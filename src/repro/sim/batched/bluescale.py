"""SoA kernel for the BlueScale fabric (scale elements + SE servers).

Each level of the quadtree holds a slot table ``(N, nodes, fanout,
buffer_capacity)`` of request ids plus a parallel key table ``kslots``
in which free slots hold the ``BIG`` sentinel — per-port minima and
blocking charges then run straight off ``kslots`` with no gather and
no occupancy mask.  Per-port fill counts (``cnt``) replace mask
reductions for the space checks.  The server counter state per port —
replenishment period ``P``, full budget ``Bfull`` and the live budget
``B`` — replays exactly as closed forms on the cycle number:

* B replenishes at the end of every cycle ``c`` with ``(c + 1) % P == 0``
  (on non-idle ports only),
* the server deadline at select time is ``P * (c // P + 1)``.

The two-pass EDF pick (budgeted servers by ``(server deadline, earliest
request deadline)``, then idle-interface background ports by earliest
request deadline) is encoded into a single int64 key per pass so
``argmin`` reproduces the scalar's strict-<, lowest-port tie-break.
"""

from __future__ import annotations

import numpy as np

from repro.sim.batched.extract import BIG, KEY_SCALE, SHIFT


class BlueScaleKernel:
    def __init__(self, core, sims) -> None:
        self.core = core
        ic = sims[0].interconnect
        topo = ic.topology
        self.depth = topo.depth
        self.fanout = topo.fanout
        self.cap = ic.elements[(0, 0)].buffers[0].capacity
        n = core.n
        self.n = n
        counts = [0] * (topo.depth + 1)
        for level, order in topo.all_nodes():
            counts[level] = max(counts[level], order + 1)
        self.counts = counts
        fo = self.fanout
        cap = self.cap
        self.slots = [
            np.zeros((n, m, fo, cap), dtype=np.int64) for m in counts
        ]
        self.kslots = [
            np.full((n, m, fo, cap), BIG, dtype=np.int64) for m in counts
        ]
        #: live entries per port; space check and first-free insert both
        #: run off this instead of reducing an occupancy mask
        self.cnt = [np.zeros((n, m, fo), dtype=np.int64) for m in counts]
        self.fcnt = [c.reshape(n, -1) for c in self.cnt]
        # flattened (node, port) views: level l's node order o feeds
        # flat slot o of level l-1
        self.fslots = [s.reshape(n, -1, cap) for s in self.slots]
        self.fkslots = [k.reshape(n, -1, cap) for k in self.kslots]
        self.period = []
        self.budget_full = []
        self.budget = []
        for level, m in enumerate(counts):
            period = np.ones((n, m, fo), dtype=np.int64)
            bfull = np.zeros((n, m, fo), dtype=np.int64)
            for t, sim in enumerate(sims):
                elements = sim.interconnect.elements
                for order in range(m):
                    servers = elements[(level, order)].scheduler.servers
                    for port, server in enumerate(servers):
                        period[t, order, port] = server.counters.period
                        bfull[t, order, port] = server.counters.budget
            self.period.append(period)
            self.budget_full.append(bfull)
            self.budget.append(bfull.copy())
        self.idle = [bfull == 0 for bfull in self.budget_full]
        ids = core.client_ids
        self.leaf_node = ids // fo
        self.leaf_port = ids % fo
        #: scalar request count per level — skips empty levels cheaply
        self.occ = [0] * (topo.depth + 1)

    def begin_cycle(self, cycle: int, active: np.ndarray) -> None:
        pass

    def inject_space(self, cycle: int) -> np.ndarray:
        return self.fcnt[self.depth][:, self.core.client_ids] < self.cap

    def accept(self, cycle, trials, cols, rids) -> None:
        level = self.depth
        node = self.leaf_node[cols]
        port = self.leaf_port[cols]
        kslots = self.kslots[level]
        slot = np.argmax(kslots[trials, node, port] == BIG, axis=1)
        self.slots[level][trials, node, port, slot] = rids
        kslots[trials, node, port, slot] = self.core.key[trials, rids]
        self.cnt[level][trials, node, port] += 1
        self.occ[level] += len(trials)

    def tick(self, cycle: int, active: np.ndarray) -> None:
        for level in range(self.depth + 1):
            self._tick_level(cycle, active, level)

    def _tick_level(self, cycle: int, active: np.ndarray, level: int) -> None:
        if not self.occ[level]:
            self._replenish(cycle, active, level)
            return
        kslots = self.kslots[level]
        min_key = kslots.min(axis=3)
        occupied = min_key < BIG
        earliest = min_key >> SHIFT
        period = self.period[level]
        budget = self.budget[level]
        idle = self.idle[level]
        server_deadline = (cycle // period + 1) * period
        # pass 1: budgeted servers, EDF over (server deadline, earliest
        # request deadline); pass 2: background (idle-interface) ports
        pass1 = np.where(
            occupied & ~idle & (budget > 0),
            server_deadline * KEY_SCALE + earliest,
            BIG,
        )
        val1 = pass1.min(axis=2)
        budgeted = val1 < BIG
        pass2 = np.where(occupied & idle, earliest, BIG)
        val2 = pass2.min(axis=2)
        found = budgeted | (val2 < BIG)
        if level > 0:
            space = self.fcnt[level - 1][:, : self.counts[level]] < self.cap
        else:
            space = self.core.provider_space()[:, None]
        tt, nn = np.nonzero(found & active[:, None] & space)
        if len(tt):
            # the winner port/slot gathers only run on the selected rows
            pp = np.where(
                budgeted[tt, nn],
                np.argmin(pass1[tt, nn], axis=1),
                np.argmin(pass2[tt, nn], axis=1),
            )
            port_keys = kslots[tt, nn, pp]
            ss = np.argmin(port_keys, axis=1)
            k_idx = np.arange(len(tt))
            winner_key = port_keys[k_idx, ss]
            rids = self.slots[level][tt, nn, pp, ss]
            kslots[tt, nn, pp, ss] = BIG
            self.cnt[level][tt, nn, pp] -= 1
            self.occ[level] -= len(tt)
            consume = ~idle[tt, nn, pp]
            budget[tt[consume], nn[consume], pp[consume]] -= 1
            if level > 0:
                up_k = self.fkslots[level - 1]
                free = np.argmax(up_k[tt, nn] == BIG, axis=1)
                self.fslots[level - 1][tt, nn, free] = rids
                up_k[tt, nn, free] = winner_key
                self.fcnt[level - 1][tt, nn] += 1
                self.occ[level - 1] += len(tt)
            else:
                self.core.enqueue_provider(tt, rids, winner_key)
            self._charge(level, tt, nn, winner_key)
        self._replenish(cycle, active, level)

    def _charge(self, level, tt, nn, winner_key) -> None:
        keys = self.kslots[level][tt, nn]  # (K, fanout, cap); free = BIG
        # a port shields its requests unless its server still has budget
        # (checked after the winner's consume) or is an idle interface
        eligible = (
            self.idle[level][tt, nn] | (self.budget[level][tt, nn] > 0)
        )
        charge = eligible[..., None] & (keys < winner_key[:, None, None])
        if charge.any():
            tb = np.broadcast_to(tt[:, None, None], charge.shape)
            sub_slots = self.slots[level][tt, nn]
            self.core.blocking[tb[charge], sub_slots[charge]] += 1

    def _replenish(self, cycle: int, active: np.ndarray, level: int) -> None:
        period = self.period[level]
        refill = (
            ((cycle + 1) % period == 0)
            & ~self.idle[level]
            & active[:, None, None]
        )
        budget = self.budget[level]
        np.copyto(budget, self.budget_full[level], where=refill)
