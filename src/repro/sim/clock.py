"""Simulation clock.

All repro simulations advance in integer *cycles*.  The clock owns the
mapping from cycles to wall-clock time so results can be reported in
microseconds, matching the units used by the paper's figures (Fig. 6
reports blocking latency in microseconds).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError


@dataclass
class Clock:
    """Integer cycle counter with a physical frequency attached.

    Parameters
    ----------
    frequency_mhz:
        Clock frequency used to convert cycles to time.  The paper's
        platform runs the interconnects at (up to) a few hundred MHz;
        the default of 100 MHz makes one cycle == 10 ns, so 100 cycles
        == 1 microsecond.
    """

    frequency_mhz: float = 100.0
    now: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.frequency_mhz <= 0:
            raise ConfigurationError(
                f"clock frequency must be positive, got {self.frequency_mhz}"
            )

    @property
    def cycle_time_us(self) -> float:
        """Duration of one cycle in microseconds."""
        return 1.0 / self.frequency_mhz

    def cycles_to_us(self, cycles: int | float) -> float:
        """Convert a cycle count to microseconds."""
        return cycles / self.frequency_mhz

    def us_to_cycles(self, us: float) -> int:
        """Convert microseconds to a whole number of cycles (rounded up)."""
        cycles = us * self.frequency_mhz
        whole = int(cycles)
        if cycles > whole:
            whole += 1
        return whole

    def tick(self, cycles: int = 1) -> int:
        """Advance the clock and return the new cycle number."""
        if cycles < 0:
            raise ConfigurationError("clock cannot run backwards")
        self.now += cycles
        return self.now

    def reset(self) -> None:
        """Rewind to cycle zero (used between simulation trials)."""
        self.now = 0
