"""Simulator backend switch: scalar reference engine vs batched SoA.

Mirrors the analysis backend switch (:mod:`repro.analysis.engine`):

* ``"scalar"`` — one :class:`~repro.soc.SoCSimulation` at a time on the
  cycle/quiescence engine.  Kept as the reference oracle.
* ``"batched"`` — :func:`repro.sim.batched.run_many` advances many
  trials in lock-step over numpy arrays (structure-of-arrays over the
  trial axis).  Trials the batched kernels cannot represent (tracing,
  non-empty fault plans, exotic controllers/clients) transparently fall
  back to the scalar engine per trial.

Both backends produce **bit-identical** :class:`~repro.soc.TrialResult`
contents — trace digests, recorder streams, job outcomes — which the
differential/property suites and ``benchmarks/bench_sim.py`` assert.
``backend=None`` anywhere resolves to the process-wide default set
here (the CLI's ``--sim-backend`` flag lands in
:func:`set_default_sim_backend`, including inside parallel workers via
the executor's ``worker_init`` hook).
"""

from __future__ import annotations

from repro.errors import ConfigurationError

#: the recognized simulator backend names
SIM_BACKENDS: tuple[str, ...] = ("scalar", "batched")

_default_sim_backend: str = "batched"


def get_default_sim_backend() -> str:
    """The process-wide simulator backend used when ``backend=None``."""
    return _default_sim_backend


def set_default_sim_backend(backend: str) -> str:
    """Set the process-wide default backend; returns the previous one.

    Picklable by reference, so it doubles as an executor
    ``worker_init`` target: ``partial(set_default_sim_backend, "scalar")``.
    """
    global _default_sim_backend
    previous = _default_sim_backend
    _default_sim_backend = resolve_sim_backend(backend)
    return previous


def resolve_sim_backend(backend: str | None) -> str:
    """Validate a ``backend=`` argument (``None`` → session default)."""
    if backend is None:
        return _default_sim_backend
    if backend not in SIM_BACKENDS:
        raise ConfigurationError(
            f"unknown sim backend {backend!r}; expected one of {SIM_BACKENDS}"
        )
    return backend
