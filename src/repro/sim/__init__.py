"""Discrete-event simulation substrate (clock, engine, statistics)."""

from repro.sim.clock import Clock
from repro.sim.engine import Engine, QuiescentComponent, TickComponent
from repro.sim.stats import (
    ComponentCycleStats,
    CycleAccounting,
    LatencyRecorder,
    SummaryStatistics,
    mean,
)
from repro.sim.invariants import (
    InterconnectMonitor,
    SbfComplianceMonitor,
    StructuralMonitor,
    monitor_interconnect,
)
from repro.sim.timeline import RequestTimeline, Timeline, format_timeline
from repro.sim.trace import (
    TraceRecord,
    TraceReplayClient,
    load_trace,
    save_trace,
    split_by_client,
    trace_from_clients,
)

__all__ = [
    "Clock",
    "ComponentCycleStats",
    "CycleAccounting",
    "Engine",
    "QuiescentComponent",
    "TickComponent",
    "LatencyRecorder",
    "SummaryStatistics",
    "mean",
    "InterconnectMonitor",
    "SbfComplianceMonitor",
    "StructuralMonitor",
    "monitor_interconnect",
    "RequestTimeline",
    "Timeline",
    "format_timeline",
    "TraceRecord",
    "TraceReplayClient",
    "load_trace",
    "save_trace",
    "split_by_client",
    "trace_from_clients",
]
