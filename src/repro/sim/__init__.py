"""Discrete-event simulation substrate (clock, engine, statistics).

Two interchangeable execution backends live underneath
(:mod:`repro.sim.backend`): the scalar reference engine
(:class:`Engine`) and the batched structure-of-arrays backend
(:func:`run_many`), which advances many structurally-identical trials
in lock-step and produces bit-identical results.
"""

from repro.sim.backend import (
    SIM_BACKENDS,
    get_default_sim_backend,
    resolve_sim_backend,
    set_default_sim_backend,
)
from repro.sim.clock import Clock
from repro.sim.engine import Engine, QuiescentComponent, TickComponent
from repro.sim.stats import (
    ComponentCycleStats,
    CycleAccounting,
    LatencyRecorder,
    SummaryStatistics,
    mean,
)
from repro.sim.invariants import (
    InterconnectMonitor,
    SbfComplianceMonitor,
    StructuralMonitor,
    monitor_interconnect,
)
from repro.sim.timeline import RequestTimeline, Timeline, format_timeline
from repro.sim.trace import (
    TraceRecord,
    TraceReplayClient,
    load_trace,
    save_trace,
    split_by_client,
    trace_from_clients,
)

# imported last: repro.sim.batched reaches back through repro.soc into
# the engine/clock names bound above
from repro.sim.batched import (  # noqa: E402
    Ineligible,
    batched_supported,
    run_many,
)

__all__ = [
    "SIM_BACKENDS",
    "get_default_sim_backend",
    "resolve_sim_backend",
    "set_default_sim_backend",
    "Ineligible",
    "batched_supported",
    "run_many",
    "Clock",
    "ComponentCycleStats",
    "CycleAccounting",
    "Engine",
    "QuiescentComponent",
    "TickComponent",
    "LatencyRecorder",
    "SummaryStatistics",
    "mean",
    "InterconnectMonitor",
    "SbfComplianceMonitor",
    "StructuralMonitor",
    "monitor_interconnect",
    "RequestTimeline",
    "Timeline",
    "format_timeline",
    "TraceRecord",
    "TraceReplayClient",
    "load_trace",
    "save_trace",
    "split_by_client",
    "trace_from_clients",
]
