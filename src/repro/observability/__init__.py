"""End-to-end request observability: spans, metrics, timelines.

The paper's headline claims (Fig. 6 blocking latency, Fig. 7
deadline-miss ratio) are *per-request* queueing phenomena, yet the
aggregate statistics in :mod:`repro.sim.stats` can only say what the
averages were — not where an individual request spent its cycles.
This package adds the missing layer:

* **Spans** (:mod:`repro.observability.spans`) — every traced
  :class:`~repro.memory.request.MemoryRequest` emits one span per
  lifecycle event (inject → per-hop enqueue → arbitration win →
  controller service start/end → response delivery) into a bounded
  ring recorder with JSON-lines export.
* **Metrics** (:mod:`repro.observability.metrics`) — a counter /
  histogram registry (per-client latency percentiles, per-site queue
  occupancy and waiting time, FR-FCFS reorder counts) whose snapshots
  merge across trials, so the :mod:`repro.runtime` executors can fold
  per-trial registries into campaign-level aggregates.
* **Tracer** (:mod:`repro.observability.tracer`) — the opt-in switch.
  ``SoCSimulation(..., observability=...)`` attaches a
  :class:`TraceContext` to each sampled request at injection time;
  components emit through ``request.trace_ctx`` and pay only a
  ``None`` check when tracing is off.
* **Timelines** (:mod:`repro.observability.timeline`) — reconstruct
  any request's per-hop journey from a live recorder or an exported
  JSONL file; rendered by the ``repro trace`` CLI subcommand.

Tracing is strictly observational: a traced trial produces the same
completion trace digest, latencies and statistics as an untraced one
(the differential tests assert it, on both engine paths).
"""

from repro.observability.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    fold_summary_scalars,
    merge_registry_snapshots,
)
from repro.observability.spans import (
    SPAN_KINDS,
    Span,
    TraceRecorder,
    load_spans_jsonl,
    validate_spans_jsonl,
)
from repro.observability.timeline import (
    RequestTimeline,
    build_timeline,
    format_timeline,
    worst_blocking_rid,
)
from repro.observability.tracer import (
    ObservabilityConfig,
    TraceContext,
    Tracer,
    make_tracer,
)

__all__ = [
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "ObservabilityConfig",
    "RequestTimeline",
    "SPAN_KINDS",
    "Span",
    "TraceContext",
    "TraceRecorder",
    "Tracer",
    "build_timeline",
    "fold_summary_scalars",
    "format_timeline",
    "load_spans_jsonl",
    "make_tracer",
    "merge_registry_snapshots",
    "validate_spans_jsonl",
    "worst_blocking_rid",
]
