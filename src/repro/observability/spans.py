"""Span records, the bounded ring recorder, and the JSONL schema.

A *span* is one observed lifecycle event of one memory transaction at
one site of the platform: the client edge (``inject``), a buffer at an
SE / mux node / the AXI switch box / the controller (``enqueue``), an
arbiter granting the transaction a forward (``arbitration_win``), the
provider's service window (``service_start`` / ``service_end``), and
the response path (``response_enqueue`` / ``deliver``).  A request's
sorted spans are its per-hop timeline; :mod:`repro.observability.timeline`
reconstructs and renders them.

The recorder is a *bounded ring*: the newest ``capacity`` spans are
kept, older ones are evicted (``dropped`` counts them), so tracing a
long trial has a hard memory ceiling.

On-disk format is JSON lines, one span per line::

    {"rid": 17, "client": 3, "site": "se:2:0", "kind": "enqueue",
     "cycle": 412, "attrs": {"port": 1, "occupancy": 2}}

``validate_spans_jsonl`` checks an exported file against the schema
(required keys, types, known kinds, monotone per-request cycles) and is
wired into the CI observability smoke job.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Mapping

from repro.errors import ConfigurationError

#: every kind a span may carry, in rough lifecycle order
SPAN_KINDS = (
    "inject",
    "enqueue",
    "arbitration_win",
    "service_start",
    "service_end",
    "response_enqueue",
    "deliver",
    # out-of-band perturbation by the fault-injection subsystem
    # (repro.faults); rid is -1 for events not tied to one request
    "fault",
)

_KIND_SET = frozenset(SPAN_KINDS)


@dataclass(frozen=True, slots=True)
class Span:
    """One lifecycle event of one request at one site."""

    rid: int
    client_id: int
    site: str
    kind: str
    cycle: int
    attrs: Mapping[str, object] | None = field(default=None)

    def __post_init__(self) -> None:
        if self.kind not in _KIND_SET:
            raise ConfigurationError(
                f"unknown span kind {self.kind!r}; expected one of {SPAN_KINDS}"
            )
        if self.cycle < 0:
            raise ConfigurationError(f"span cycle must be >= 0, got {self.cycle}")

    def as_dict(self) -> dict[str, object]:
        """The JSONL wire form (``attrs`` omitted when empty)."""
        record: dict[str, object] = {
            "rid": self.rid,
            "client": self.client_id,
            "site": self.site,
            "kind": self.kind,
            "cycle": self.cycle,
        }
        if self.attrs:
            record["attrs"] = dict(self.attrs)
        return record

    @classmethod
    def from_dict(cls, record: Mapping[str, object]) -> "Span":
        """Parse one wire record (raises ConfigurationError when malformed)."""
        _validate_record(record)
        attrs = record.get("attrs")
        return cls(
            rid=record["rid"],  # type: ignore[arg-type]
            client_id=record["client"],  # type: ignore[arg-type]
            site=record["site"],  # type: ignore[arg-type]
            kind=record["kind"],  # type: ignore[arg-type]
            cycle=record["cycle"],  # type: ignore[arg-type]
            attrs=dict(attrs) if attrs else None,  # type: ignore[arg-type]
        )


#: (key, required type) pairs every wire record must satisfy
_REQUIRED_FIELDS = (
    ("rid", int),
    ("client", int),
    ("site", str),
    ("kind", str),
    ("cycle", int),
)


def _validate_record(record: Mapping[str, object]) -> None:
    if not isinstance(record, Mapping):
        raise ConfigurationError(f"span record must be an object, got {record!r}")
    for key, expected in _REQUIRED_FIELDS:
        if key not in record:
            raise ConfigurationError(f"span record missing {key!r}: {record!r}")
        value = record[key]
        # bool is an int subclass; reject it explicitly for numeric fields
        if not isinstance(value, expected) or isinstance(value, bool):
            raise ConfigurationError(
                f"span field {key!r} must be {expected.__name__}, got {value!r}"
            )
    if record["kind"] not in _KIND_SET:
        raise ConfigurationError(f"unknown span kind {record['kind']!r}")
    if record["cycle"] < 0:  # type: ignore[operator]
        raise ConfigurationError(f"negative span cycle in {record!r}")
    attrs = record.get("attrs")
    if attrs is not None and not isinstance(attrs, Mapping):
        raise ConfigurationError(f"span attrs must be an object, got {attrs!r}")


class TraceRecorder:
    """Bounded ring of spans: the newest ``capacity`` survive."""

    def __init__(self, capacity: int = 65_536) -> None:
        if capacity <= 0:
            raise ConfigurationError(
                f"recorder capacity must be positive, got {capacity}"
            )
        self.capacity = capacity
        self._ring: deque[Span] = deque(maxlen=capacity)
        self.emitted = 0

    def record(self, span: Span) -> None:
        self._ring.append(span)
        self.emitted += 1

    @property
    def dropped(self) -> int:
        """Spans evicted by the ring bound."""
        return self.emitted - len(self._ring)

    def __len__(self) -> int:
        return len(self._ring)

    def spans(self, rid: int | None = None) -> list[Span]:
        """All retained spans in emission order (optionally one request's)."""
        if rid is None:
            return list(self._ring)
        return [span for span in self._ring if span.rid == rid]

    def request_ids(self) -> list[int]:
        """Distinct rids with retained spans, in first-seen order."""
        seen: dict[int, None] = {}
        for span in self._ring:
            seen.setdefault(span.rid, None)
        return list(seen)

    def clear(self) -> None:
        self._ring.clear()
        self.emitted = 0

    # -- export ------------------------------------------------------------
    def export_jsonl(self, path: str | Path) -> int:
        """Write retained spans as JSON lines; returns the count written."""
        count = 0
        with open(path, "w", encoding="utf-8") as handle:
            for span in self._ring:
                handle.write(json.dumps(span.as_dict()) + "\n")
                count += 1
        return count


def _iter_jsonl(path: str | Path) -> Iterator[tuple[int, Mapping[str, object]]]:
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                yield line_number, json.loads(line)
            except json.JSONDecodeError as exc:
                raise ConfigurationError(
                    f"{path}:{line_number}: malformed JSON ({exc})"
                ) from exc


def load_spans_jsonl(path: str | Path) -> list[Span]:
    """Read an exported span file back, preserving order."""
    spans: list[Span] = []
    for line_number, record in _iter_jsonl(path):
        try:
            spans.append(Span.from_dict(record))
        except ConfigurationError as exc:
            raise ConfigurationError(f"{path}:{line_number}: {exc}") from exc
    return spans


def validate_spans_jsonl(path: str | Path) -> int:
    """Validate an exported file against the span schema.

    Checks every line parses, carries the required typed fields and a
    known kind, and that each request's spans appear in non-decreasing
    cycle order (emission order is simulation order, so a traced run
    can never export a time-travelling request).  Returns the number of
    valid spans; raises :class:`ConfigurationError` on the first bad line.
    """
    last_cycle: dict[int, int] = {}
    count = 0
    for line_number, record in _iter_jsonl(path):
        try:
            _validate_record(record)
        except ConfigurationError as exc:
            raise ConfigurationError(f"{path}:{line_number}: {exc}") from exc
        rid = record["rid"]
        cycle = record["cycle"]
        previous = last_cycle.get(rid)
        if previous is not None and cycle < previous:  # type: ignore[operator]
            raise ConfigurationError(
                f"{path}:{line_number}: request {rid} goes back in time "
                f"({previous} -> {cycle})"
            )
        last_cycle[rid] = cycle  # type: ignore[assignment]
        count += 1
    return count


def spans_by_request(spans: Iterable[Span]) -> dict[int, list[Span]]:
    """Group spans per request id, preserving emission order."""
    grouped: dict[int, list[Span]] = {}
    for span in spans:
        grouped.setdefault(span.rid, []).append(span)
    return grouped
