"""Reconstruct and render one request's per-hop journey.

Input is any span stream — a live :class:`TraceRecorder` or a list
loaded back from an exported JSONL file — and the output is what the
``repro trace`` CLI subcommand prints: the request's lifecycle events
in order, with per-hop queue-waiting attribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import ConfigurationError
from repro.observability.spans import Span

#: span kinds that open a queue residency at a site
_ENTER_KINDS = frozenset({"enqueue"})
#: span kinds that close it (the arbiter granted the hop)
_GRANT_KINDS = frozenset({"arbitration_win", "service_start"})


@dataclass(frozen=True)
class HopResidency:
    """Time one request spent buffered at one site."""

    site: str
    enqueue_cycle: int
    grant_cycle: int | None

    @property
    def wait_cycles(self) -> int | None:
        if self.grant_cycle is None:
            return None
        return self.grant_cycle - self.enqueue_cycle


@dataclass(frozen=True)
class RequestTimeline:
    """One request's ordered lifecycle events plus derived hop waits."""

    rid: int
    client_id: int
    spans: tuple[Span, ...]

    @property
    def inject_cycle(self) -> int | None:
        for span in self.spans:
            if span.kind == "inject":
                return span.cycle
        return None

    @property
    def deliver_cycle(self) -> int | None:
        for span in reversed(self.spans):
            if span.kind == "deliver":
                return span.cycle
        return None

    @property
    def latency(self) -> int | None:
        """Inject-to-deliver cycles (None while either end is missing)."""
        start, end = self.inject_cycle, self.deliver_cycle
        if start is None or end is None:
            return None
        return end - start

    @property
    def complete(self) -> bool:
        """True when the trace covers injection through delivery."""
        return self.inject_cycle is not None and self.deliver_cycle is not None

    def hops(self) -> list[HopResidency]:
        """Per-site queue residencies in the order the request met them."""
        residencies: list[HopResidency] = []
        open_index: dict[str, int] = {}
        for span in self.spans:
            if span.kind in _ENTER_KINDS:
                open_index[span.site] = len(residencies)
                residencies.append(
                    HopResidency(span.site, span.cycle, None)
                )
            elif span.kind in _GRANT_KINDS:
                index = open_index.pop(span.site, None)
                if index is not None:
                    entered = residencies[index]
                    residencies[index] = HopResidency(
                        entered.site, entered.enqueue_cycle, span.cycle
                    )
        return residencies


def build_timeline(spans: Iterable[Span], rid: int) -> RequestTimeline:
    """Assemble request ``rid``'s timeline from any span stream.

    Emission order is simulation order, so the stream's relative order
    is kept for same-cycle events; a stable sort on cycle tolerates
    streams that were concatenated or filtered out of order.
    """
    mine = [span for span in spans if span.rid == rid]
    if not mine:
        raise ConfigurationError(f"no spans recorded for request {rid}")
    mine.sort(key=lambda span: span.cycle)  # stable: keeps emission order
    return RequestTimeline(
        rid=rid, client_id=mine[0].client_id, spans=tuple(mine)
    )


def format_timeline(timeline: RequestTimeline) -> str:
    """Human-readable rendering (what ``repro trace`` prints)."""
    lines: list[str] = []
    latency = timeline.latency
    header = f"request {timeline.rid} (client {timeline.client_id})"
    if latency is not None:
        header += (
            f": injected @{timeline.inject_cycle}, "
            f"delivered @{timeline.deliver_cycle}, "
            f"latency {latency} cycles"
        )
    else:
        header += ": partial trace (ring may have evicted early spans)"
    lines.append(header)
    base = timeline.spans[0].cycle
    lines.append(f"  {'cycle':>8} {'+rel':>6}  {'site':<14} event")
    for span in timeline.spans:
        attrs = ""
        if span.attrs:
            rendered = ", ".join(
                f"{key}={value}" for key, value in sorted(span.attrs.items())
            )
            attrs = f"  ({rendered})"
        lines.append(
            f"  {span.cycle:>8} {span.cycle - base:>6}  "
            f"{span.site:<14} {span.kind}{attrs}"
        )
    hops = timeline.hops()
    if hops:
        lines.append("  hop waits:")
        for hop in hops:
            wait = hop.wait_cycles
            shown = f"{wait} cycles" if wait is not None else "still queued"
            lines.append(
                f"    {hop.site:<14} enqueued @{hop.enqueue_cycle}, {shown}"
            )
    return "\n".join(lines)


def worst_blocking_rid(spans: Sequence[Span]) -> int | None:
    """The traced request with the largest recorded blocking time.

    ``deliver`` spans carry ``blocking`` in their attrs; this is the
    default subject of ``repro trace`` when no ``--rid`` is given.
    """
    best_rid: int | None = None
    best_blocking = -1
    for span in spans:
        if span.kind != "deliver" or not span.attrs:
            continue
        blocking = span.attrs.get("blocking")
        if blocking is None:
            continue
        if int(blocking) > best_blocking:  # type: ignore[call-overload]
            best_blocking = int(blocking)  # type: ignore[call-overload]
            best_rid = span.rid
    return best_rid
