"""The opt-in tracing switch: trace contexts, span fan-in, metric feed.

Architecture: the hot simulation modules (interconnects, controller,
SoC stages) never import this package.  They duck-type through the
``trace_ctx`` slot on :class:`~repro.memory.request.MemoryRequest` —

.. code-block:: python

    ctx = request.trace_ctx
    if ctx is not None:
        ctx.emit("mc", "service_start", cycle)

— which is a single attribute load plus an always-false ``is not
None`` check when tracing is off (``trace_ctx`` defaults to ``None``
and nothing ever sets it).  That is the whole disabled-path cost, and
it sits only at per-request event points, never inside per-cycle scan
loops, so the quiescence fast path and the ``BENCH_sim.json`` numbers
are untouched.

When tracing is on, :meth:`Tracer.wrap_inject` shims the
``interconnect.try_inject`` bound method that ``SoCSimulation`` hands
to the client stage: each sampled request gets a :class:`TraceContext`
on first injection attempt, an ``inject`` span on acceptance, and every
downstream component's emissions flow through the context into the
bounded ring recorder and the metrics registry.  All emission points
fire on *executed* cycles in both engine paths (leaps only skip
provably event-free cycles), so a traced fast-path run records the
same span stream as a traced slow-path run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

from repro.errors import ConfigurationError
from repro.memory.request import MemoryRequest
from repro.observability.metrics import MetricsRegistry
from repro.observability.spans import Span, TraceRecorder

#: signature of Interconnect.try_inject
InjectFn = Callable[[MemoryRequest, int], bool]


@dataclass(frozen=True)
class ObservabilityConfig:
    """Knobs for one traced trial."""

    #: ring bound on retained spans (oldest evicted beyond it)
    ring_capacity: int = 65_536
    #: trace every Nth request (1 = all); sampling is by request id,
    #: which is assigned in issue order and reset per run, so fast and
    #: slow runs sample the identical request population
    sample_every: int = 1
    #: feed the counter/histogram registry alongside the span ring
    collect_metrics: bool = True

    def __post_init__(self) -> None:
        if self.sample_every < 1:
            raise ConfigurationError(
                f"sample_every must be >= 1, got {self.sample_every}"
            )


class TraceContext:
    """Per-request emission handle carried in ``request.trace_ctx``.

    Components hold the request, not the tracer; the context carries the
    request's identity plus the route back to the recorder, and tracks
    the open enqueue per site so queue-waiting time can be attributed
    hop by hop.
    """

    __slots__ = ("rid", "client_id", "_tracer", "_open_enqueue")

    def __init__(self, rid: int, client_id: int, tracer: "Tracer") -> None:
        self.rid = rid
        self.client_id = client_id
        self._tracer = tracer
        #: site -> cycle of the not-yet-granted enqueue at that site
        self._open_enqueue: dict[str, int] = {}

    def emit(
        self,
        site: str,
        kind: str,
        cycle: int,
        attrs: Mapping[str, object] | None = None,
    ) -> None:
        """Record one lifecycle event of this request at ``site``."""
        self._tracer._record(self, site, kind, cycle, attrs)


class Tracer:
    """Owns one trial's span ring and metrics registry."""

    def __init__(self, config: ObservabilityConfig | None = None) -> None:
        self.config = config if config is not None else ObservabilityConfig()
        self.recorder = TraceRecorder(capacity=self.config.ring_capacity)
        self.registry = MetricsRegistry()

    # -- attach ------------------------------------------------------------
    def attach(self, request: MemoryRequest) -> TraceContext | None:
        """Give ``request`` a trace context if it falls in the sample.

        Sampling is a pure function of the request id — assigned in
        issue order and reset at the start of every run — so it is
        stateless across injection retries and identical across engine
        paths: differential runs trace the same request population.
        """
        if request.trace_ctx is not None:
            return request.trace_ctx
        if request.rid % self.config.sample_every != 0:
            return None
        ctx = TraceContext(request.rid, request.client_id, self)
        request.trace_ctx = ctx
        return ctx

    def wrap_inject(self, inject: InjectFn) -> InjectFn:
        """Shim ``try_inject`` so sampled requests enter traced.

        The context attaches on the *first* offer (refused offers keep
        it for the retry); the ``inject`` span lands on the cycle the
        fabric actually accepts the request.
        """

        def traced_inject(request: MemoryRequest, cycle: int) -> bool:
            ctx = self.attach(request)
            accepted = inject(request, cycle)
            if accepted and ctx is not None:
                ctx.emit(
                    f"client:{request.client_id}",
                    "inject",
                    cycle,
                    {"release": request.release_cycle},
                )
            return accepted

        return traced_inject

    # -- fan-in ------------------------------------------------------------
    def _record(
        self,
        ctx: TraceContext,
        site: str,
        kind: str,
        cycle: int,
        attrs: Mapping[str, object] | None,
    ) -> None:
        self.recorder.record(
            Span(
                rid=ctx.rid,
                client_id=ctx.client_id,
                site=site,
                kind=kind,
                cycle=cycle,
                attrs=dict(attrs) if attrs else None,
            )
        )
        if not self.config.collect_metrics:
            return
        registry = self.registry
        if kind == "enqueue":
            ctx._open_enqueue[site] = cycle
            if attrs is not None:
                occupancy = attrs.get("occupancy")
                if occupancy is not None:
                    registry.histogram(f"site/{site}/occupancy").observe(
                        float(occupancy)  # type: ignore[arg-type]
                    )
        elif kind in ("arbitration_win", "service_start"):
            entered = ctx._open_enqueue.pop(site, None)
            if entered is not None:
                registry.histogram(f"site/{site}/wait").observe(
                    float(cycle - entered)
                )

    def on_completion(self, request: MemoryRequest, cycle: int) -> None:
        """Called by the response stage for every delivered request."""
        ctx = request.trace_ctx
        if ctx is None:
            return
        ctx.emit(
            f"client:{request.client_id}",
            "deliver",
            cycle,
            {"blocking": request.blocking_cycles},
        )
        if not self.config.collect_metrics:
            return
        registry = self.registry
        registry.counter("requests/traced").increment()
        client = request.client_id
        registry.histogram(f"client/{client}/latency").observe(
            float(request.response_time)
        )
        registry.histogram(f"client/{client}/blocking").observe(
            float(request.blocking_cycles)
        )

    # -- trial-end collection ----------------------------------------------
    def record_controller_stats(self, controller: object) -> None:
        """Fold provider-side counters (FR-FCFS reorders) in at trial end."""
        reorders = getattr(controller, "reorder_count", None)
        if reorders is not None:
            self.registry.counter("controller/reorder_total").increment(
                int(reorders)
            )

    def summary_scalars(self, prefix: str = "") -> dict[str, float]:
        """Flat float view for the runtime metric pipeline."""
        scalars = self.registry.summary_scalars(prefix)
        scalars[f"{prefix}spans_emitted"] = float(self.recorder.emitted)
        scalars[f"{prefix}spans_dropped"] = float(self.recorder.dropped)
        return scalars


def make_tracer(
    observability: "bool | ObservabilityConfig | Tracer | None",
) -> Tracer | None:
    """Normalise the ``SoCSimulation(observability=...)`` argument.

    ``None``/``False`` → tracing off (no tracer, zero cost).  ``True``
    → a tracer with default config.  A config → a tracer built from it.
    A tracer → used as-is (lets callers keep the recorder handle).
    """
    if observability is None or observability is False:
        return None
    if observability is True:
        return Tracer()
    if isinstance(observability, ObservabilityConfig):
        return Tracer(observability)
    if isinstance(observability, Tracer):
        return observability
    raise ConfigurationError(
        f"observability must be bool, ObservabilityConfig or Tracer, "
        f"got {observability!r}"
    )
