"""Counter / histogram registry with cross-trial merge.

The registry is the quantitative half of the observability layer: the
tracer feeds it per-client latencies, per-site queue occupancy and
waiting cycles, blocking attribution and FR-FCFS reorder counts; the
:mod:`repro.runtime` executors fold per-trial snapshots into
campaign-level aggregates with :func:`merge_registry_snapshots`.

Two instrument kinds only:

* :class:`Counter` — a monotone event count (``reorder/total``).
* :class:`Histogram` — a raw scalar sample; summarised on demand via
  :class:`repro.sim.stats.SummaryStatistics` so percentiles use the
  exact same nearest-rank definition as the paper's figures.

Snapshots are plain JSON-able dicts, so they pickle cheaply through
the parallel executor and merge without the source objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.errors import ConfigurationError
from repro.sim.stats import SummaryStatistics


@dataclass
class Counter:
    """A monotone event count."""

    name: str
    value: int = 0

    def increment(self, amount: int = 1) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (got {amount})"
            )
        self.value += amount


@dataclass
class Histogram:
    """A raw scalar sample summarised on demand.

    Samples are kept verbatim (trial-scale cardinality, bounded by the
    request count) so merged percentiles are exact rather than
    bucket-approximated.
    """

    name: str
    samples: list[float] = field(default_factory=list)

    def observe(self, value: float) -> None:
        self.samples.append(value)

    @property
    def count(self) -> int:
        return len(self.samples)

    def summary(self) -> SummaryStatistics:
        return SummaryStatistics.from_sample(self.samples)


class MetricsRegistry:
    """Named counters and histograms for one traced trial."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """Get-or-create the counter ``name``."""
        found = self._counters.get(name)
        if found is None:
            if name in self._histograms:
                raise ConfigurationError(
                    f"metric {name!r} is already a histogram"
                )
            found = Counter(name)
            self._counters[name] = found
        return found

    def histogram(self, name: str) -> Histogram:
        """Get-or-create the histogram ``name``."""
        found = self._histograms.get(name)
        if found is None:
            if name in self._counters:
                raise ConfigurationError(
                    f"metric {name!r} is already a counter"
                )
            found = Histogram(name)
            self._histograms[name] = found
        return found

    @property
    def counters(self) -> Mapping[str, Counter]:
        return self._counters

    @property
    def histograms(self) -> Mapping[str, Histogram]:
        return self._histograms

    # -- snapshot / merge --------------------------------------------------
    def snapshot(self) -> dict[str, dict[str, object]]:
        """JSON-able view of every instrument (samples kept verbatim)."""
        return {
            "counters": {
                name: counter.value for name, counter in self._counters.items()
            },
            "histograms": {
                name: list(histogram.samples)
                for name, histogram in self._histograms.items()
            },
        }

    def merge_snapshot(self, snapshot: Mapping[str, object]) -> None:
        """Fold one :meth:`snapshot` into this registry (cross-trial)."""
        counters = snapshot.get("counters", {})
        if not isinstance(counters, Mapping):
            raise ConfigurationError(f"bad counters section: {counters!r}")
        for name, value in counters.items():
            self.counter(name).increment(int(value))  # type: ignore[call-overload]
        histograms = snapshot.get("histograms", {})
        if not isinstance(histograms, Mapping):
            raise ConfigurationError(f"bad histograms section: {histograms!r}")
        for name, samples in histograms.items():
            self.histogram(name).samples.extend(samples)  # type: ignore[arg-type]

    def summary_scalars(self, prefix: str = "") -> dict[str, float]:
        """Flatten to plain floats for a :class:`repro.runtime` MetricSet.

        Counters become ``{prefix}{name}``; histograms expand to
        ``_count`` / ``_mean`` / ``_p50`` / ``_p95`` / ``_p99`` /
        ``_max`` keys so per-trial percentiles survive executor
        pickling as scalars.
        """
        scalars: dict[str, float] = {}
        for name, counter in sorted(self._counters.items()):
            scalars[f"{prefix}{name}"] = float(counter.value)
        for name, histogram in sorted(self._histograms.items()):
            stats = histogram.summary()
            scalars[f"{prefix}{name}_count"] = float(stats.count)
            scalars[f"{prefix}{name}_mean"] = stats.mean
            scalars[f"{prefix}{name}_p50"] = stats.p50
            scalars[f"{prefix}{name}_p95"] = stats.p95
            scalars[f"{prefix}{name}_p99"] = stats.p99
            scalars[f"{prefix}{name}_max"] = stats.maximum
        return scalars


def fold_summary_scalars(
    scalar_maps: Iterable[Mapping[str, float]],
    marker: str = "/obs/",
) -> dict[str, float]:
    """Fold many records' flattened observability scalars into one view.

    The inverse-direction companion of :meth:`MetricsRegistry.summary_scalars`:
    once per-trial registries have been flattened to plain floats (and
    aggregated into campaign cell records), the raw samples are gone —
    this folds the flattened keys across records by what each key
    *means*: ``…_count`` and bare counter keys **sum**, ``…_max``
    takes the **max**, and ``…_mean``/``…_p50``/``…_p95``/``…_p99``
    average (unweighted across records — an approximation, flagged by
    the key name staying a mean-of-means).  Only keys containing
    ``marker`` participate, so experiment scalars pass through untouched.
    """
    sums: dict[str, float] = {}
    counts: dict[str, int] = {}
    maxima: dict[str, float] = {}
    averaged = ("_mean", "_p50", "_p95", "_p99")
    for scalars in scalar_maps:
        for name, value in scalars.items():
            if marker not in name:
                continue
            if name.endswith("_max"):
                maxima[name] = max(maxima.get(name, float(value)), float(value))
            elif name.endswith(averaged):
                sums[name] = sums.get(name, 0.0) + float(value)
                counts[name] = counts.get(name, 0) + 1
            else:
                sums[name] = sums.get(name, 0.0) + float(value)
    folded: dict[str, float] = dict(maxima)
    for name, total in sums.items():
        folded[name] = total / counts[name] if name in counts else total
    return dict(sorted(folded.items()))


def merge_registry_snapshots(
    snapshots: Iterable[Mapping[str, object]],
) -> MetricsRegistry:
    """Rebuild one registry out of many per-trial snapshots.

    Counters add; histogram samples concatenate, so percentiles of the
    merged registry are percentiles of the pooled sample — the same
    reduction the runtime metric pipeline applies to latency lists.
    """
    merged = MetricsRegistry()
    for snapshot in snapshots:
        merged.merge_snapshot(snapshot)
    return merged
