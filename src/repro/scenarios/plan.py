"""Deterministic scenario plans: workload churn as a pure value.

A :class:`ScenarioPlan` is a frozen, picklable timeline of
:class:`ScenarioEvent`\\ s — clients joining, leaving, changing rate or
switching operating mode mid-simulation.  Like
:class:`~repro.faults.plan.FaultPlan` it is *data only*: nothing here
touches a simulation.  The :class:`~repro.scenarios.driver.ScenarioDriver`
interprets a plan against a running :class:`~repro.soc.SoCSimulation`,
and :func:`~repro.scenarios.replay.replay_plan` interprets the same plan
against an :class:`~repro.analysis.session.AdmissionSession`.  Both
consumers derive the post-event task sets through the *same* pure
functions in this module (:func:`rate_scaled`, :func:`proposed_tasksets`),
so the analytical view of the workload and the traffic the simulator
actually generates can never drift apart.

Event taxonomy (the churn modes the BlueScale re-selection claim must
survive):

* ``CLIENT_JOIN`` — a client starts (or extends) a workload: ``tasks``
  are added to its declared set, first releases phased at the event
  cycle.
* ``CLIENT_LEAVE`` — a client powers down: its declared set empties,
  queued-but-unissued work is withdrawn and its unfinished jobs stop
  being judged (nobody observes a departed client's deadlines).
* ``RATE_CHANGE`` — every period in the client's current set is scaled
  by ``factor`` (``factor < 1`` means shorter periods, i.e. *more*
  demand); WCETs are unchanged.
* ``MODE_SWITCH`` — the client's declared set is *replaced* by
  ``tasks`` (an operating-mode change).  The old mode's queued work is
  abandoned, mirroring a software workload restart.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import ConfigurationError
from repro.runtime.seeding import seed_stream
from repro.tasks.task import PeriodicTask
from repro.tasks.taskset import TaskSet


class ScenarioKind(enum.Enum):
    """What kind of workload transition a :class:`ScenarioEvent` applies."""

    CLIENT_JOIN = "client-join"
    CLIENT_LEAVE = "client-leave"
    RATE_CHANGE = "rate-change"
    MODE_SWITCH = "mode-switch"


#: kinds whose event must carry a non-empty ``tasks`` payload
_PAYLOAD_KINDS = frozenset({ScenarioKind.CLIENT_JOIN, ScenarioKind.MODE_SWITCH})


def rate_scaled(taskset: TaskSet, factor: float) -> TaskSet:
    """Rescale every period in ``taskset`` by ``factor`` (WCETs kept).

    The new period is ``round(period * factor)`` clamped below by the
    task's WCET (a :class:`~repro.tasks.task.PeriodicTask` requires
    ``wcet <= period``), so even aggressive rate increases yield a valid
    task.  Shared by the simulator driver and the analysis replay so a
    ``RATE_CHANGE`` means the same workload on both sides.
    """
    if factor <= 0:
        raise ConfigurationError(f"rate factor must be > 0, got {factor}")
    scaled = []
    for task in taskset:
        period = max(task.wcet, round(task.period * factor), 1)
        scaled.append(
            PeriodicTask(
                period=period,
                wcet=task.wcet,
                name=task.name,
                client_id=task.client_id,
            )
        )
    return TaskSet(scaled)


@dataclass(frozen=True)
class ScenarioEvent:
    """One workload transition at one cycle.

    ``tasks`` is the joined/new-mode payload (``CLIENT_JOIN`` /
    ``MODE_SWITCH``); ``factor`` is the period multiplier
    (``RATE_CHANGE``).  Events are pure values: the driver stamps the
    ``client_id`` onto payload tasks when applying them.
    """

    kind: ScenarioKind
    cycle: int
    client_id: int
    tasks: tuple[PeriodicTask, ...] = field(default=())
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.cycle < 0:
            raise ConfigurationError(f"event cycle must be >= 0, got {self.cycle}")
        if self.client_id < 0:
            raise ConfigurationError(
                f"client_id must be >= 0, got {self.client_id}"
            )
        if self.kind in _PAYLOAD_KINDS and not self.tasks:
            raise ConfigurationError(f"{self.kind.value} event needs tasks")
        if self.kind not in _PAYLOAD_KINDS and self.tasks:
            raise ConfigurationError(
                f"{self.kind.value} event must not carry tasks"
            )
        if self.kind is ScenarioKind.RATE_CHANGE:
            if self.factor <= 0:
                raise ConfigurationError(
                    f"rate factor must be > 0, got {self.factor}"
                )
        elif self.factor != 1.0:
            raise ConfigurationError(
                "factor is only meaningful for rate-change events"
            )

    def assigned_tasks(self) -> TaskSet:
        """Payload tasks stamped with this event's ``client_id``."""
        return TaskSet([task.with_client(self.client_id) for task in self.tasks])

    def proposed(self, current: TaskSet) -> TaskSet:
        """The client's declared task set after this event applies."""
        if self.kind is ScenarioKind.CLIENT_JOIN:
            return current.merged_with(self.assigned_tasks())
        if self.kind is ScenarioKind.CLIENT_LEAVE:
            return TaskSet()
        if self.kind is ScenarioKind.RATE_CHANGE:
            return rate_scaled(current, self.factor)
        return self.assigned_tasks()


def proposed_tasksets(
    current: Mapping[int, TaskSet], event: ScenarioEvent
) -> dict[int, TaskSet]:
    """System-wide task sets after ``event`` applies to ``current``.

    Pure: ``current`` is not mutated.  Only ``event.client_id``'s entry
    changes; a leave keeps the (now empty) entry so the client's port
    stays accounted for.
    """
    result = dict(current)
    before = current.get(event.client_id, TaskSet())
    result[event.client_id] = event.proposed(before)
    return result


@dataclass(frozen=True)
class ScenarioPlan:
    """A frozen schedule of workload transitions, sorted by cycle.

    Mirrors :class:`~repro.faults.plan.FaultPlan`: pure data, explicit
    ``none()`` for the empty plan, and a seeded :meth:`generate` for
    reproducible churn campaigns.
    """

    events: tuple[ScenarioEvent, ...] = field(default=())

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(
                self.events,
                key=lambda e: (e.cycle, e.kind.value, e.client_id),
            )
        )
        object.__setattr__(self, "events", ordered)

    @staticmethod
    def none() -> "ScenarioPlan":
        """The empty plan — attaching it must be bit-for-bit inert."""
        return ScenarioPlan(())

    @property
    def empty(self) -> bool:
        return not self.events

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def of_kind(self, kind: ScenarioKind) -> tuple[ScenarioEvent, ...]:
        return tuple(e for e in self.events if e.kind is kind)

    def clients(self) -> frozenset[int]:
        """Every client touched by some event (the non-victims)."""
        return frozenset(e.client_id for e in self.events)

    @staticmethod
    def generate(
        seed: int,
        horizon: int,
        n_clients: int,
        *,
        joins: int = 1,
        leaves: int = 1,
        rate_changes: int = 1,
        mode_switches: int = 1,
        tasks_per_event: int = 2,
        period_min: int = 100,
        period_max: int = 2_000,
    ) -> "ScenarioPlan":
        """Derive a reproducible churn plan from an explicit seed.

        Event cycles land in ``[horizon // 8, 4 * horizon // 5)`` so
        there is always a pre-churn warm phase and a post-churn tail to
        observe transients in.  Same arguments → same plan, on any
        executor backend.
        """
        if horizon <= 0:
            raise ConfigurationError(f"horizon must be > 0, got {horizon}")
        if n_clients <= 0:
            raise ConfigurationError(
                f"need at least one client, got {n_clients}"
            )
        rng = seed_stream(f"scenarios/{seed}/{horizon}/{n_clients}")

        def draw_cycle() -> int:
            return rng.randrange(horizon // 8, max(horizon // 8 + 1, 4 * horizon // 5))

        def draw_tasks() -> tuple[PeriodicTask, ...]:
            tasks = []
            for index in range(tasks_per_event):
                period = rng.randrange(period_min, period_max + 1)
                wcet = rng.randrange(1, max(2, min(8, period)))
                tasks.append(
                    PeriodicTask(period=period, wcet=wcet, name=f"gen{index}")
                )
            return tuple(tasks)

        events: list[ScenarioEvent] = []
        for _ in range(joins):
            events.append(
                ScenarioEvent(
                    kind=ScenarioKind.CLIENT_JOIN,
                    cycle=draw_cycle(),
                    client_id=rng.randrange(n_clients),
                    tasks=draw_tasks(),
                )
            )
        for _ in range(leaves):
            events.append(
                ScenarioEvent(
                    kind=ScenarioKind.CLIENT_LEAVE,
                    cycle=draw_cycle(),
                    client_id=rng.randrange(n_clients),
                )
            )
        for _ in range(rate_changes):
            events.append(
                ScenarioEvent(
                    kind=ScenarioKind.RATE_CHANGE,
                    cycle=draw_cycle(),
                    client_id=rng.randrange(n_clients),
                    factor=rng.choice((0.5, 0.8, 1.25, 2.0)),
                )
            )
        for _ in range(mode_switches):
            events.append(
                ScenarioEvent(
                    kind=ScenarioKind.MODE_SWITCH,
                    cycle=draw_cycle(),
                    client_id=rng.randrange(n_clients),
                    tasks=draw_tasks(),
                )
            )
        return ScenarioPlan(tuple(events))
