"""Interpret a :class:`~repro.scenarios.plan.ScenarioPlan` against a run.

The :class:`ScenarioDriver` is the scenario analogue of
:class:`~repro.faults.injectors.FaultOrchestrator`: a tick component
registered as an early engine stage that fires each event exactly once
at its cycle, through three narrow client hooks
(:meth:`~repro.clients.traffic_generator.TrafficGenerator.scenario_join`
/ ``scenario_leave`` / ``scenario_retask``).

Two contracts matter:

* **Inertness** — a driver for the empty plan never touches anything:
  its tick is a no-op, it is always quiescent and it declares no
  activity, so attaching ``ScenarioPlan.none()`` is bit-for-bit
  invisible on both engine paths.
* **Quiescence** — the driver is always quiescent (events are
  scheduled, not reactive) but declares the earliest pending event
  cycle as activity, so the engine's leap can never jump over a
  transition.

An optional ``admission`` callback gates every event: the churn
experiment uses it to run the event through an
:class:`~repro.analysis.session.AdmissionSession` (and reprogram SE
budgets) before the traffic changes; a ``False`` verdict vetoes the
event — the client's traffic stays exactly as it was.
"""

from __future__ import annotations

import heapq
from typing import Callable, Mapping

from repro.errors import ConfigurationError
from repro.scenarios.plan import ScenarioEvent, ScenarioKind, ScenarioPlan
from repro.tasks.taskset import TaskSet

#: gate called as ``admission(index, event, cycle, proposed)`` where
#: ``proposed`` maps every client to its declared task set *after* the
#: event; return False to veto (the simulator then skips the event).
AdmissionFn = Callable[[int, ScenarioEvent, int, Mapping[int, TaskSet]], bool]

_HOOKS = {
    ScenarioKind.CLIENT_JOIN: "scenario_join",
    ScenarioKind.CLIENT_LEAVE: "scenario_leave",
    ScenarioKind.RATE_CHANGE: "scenario_retask",
    ScenarioKind.MODE_SWITCH: "scenario_retask",
}

_COUNTER_OF = {
    ScenarioKind.CLIENT_JOIN: "joins",
    ScenarioKind.CLIENT_LEAVE: "leaves",
    ScenarioKind.RATE_CHANGE: "rate_changes",
    ScenarioKind.MODE_SWITCH: "mode_switches",
}


class ScenarioDriver:
    """Applies plan events to the bound clients at their cycles."""

    def __init__(
        self, plan: ScenarioPlan, admission: AdmissionFn | None = None
    ) -> None:
        self.plan = plan
        self.admission = admission
        self._clients_by_id: dict[int, object] = {}
        self._client_stage = None
        #: declared task set per bound client, kept in lock-step with
        #: the applied events — the admission gate sees the same
        #: system-wide view the analysis session would.
        self._tasksets: dict[int, TaskSet] = {}
        self._actions: list[tuple[int, int]] = []
        for index, event in enumerate(plan.events):
            heapq.heappush(self._actions, (event.cycle, index))
        # Outcome ledger, folded into TrialResult.scenario_counters.
        self.events_applied = 0
        self.events_rejected = 0
        self.events_ignored = 0
        self.joins = 0
        self.leaves = 0
        self.rate_changes = 0
        self.mode_switches = 0

    # -- wiring ------------------------------------------------------------
    def bind(
        self,
        clients,  # noqa: ANN001
        interconnect,  # noqa: ANN001
        client_stage=None,  # noqa: ANN001
    ) -> None:
        """Attach the driver to a simulation's live components."""
        self._clients_by_id = {c.client_id: c for c in clients}
        self._client_stage = client_stage
        self._tasksets = {
            c.client_id: TaskSet(list(c.taskset)) for c in clients
        }

    @property
    def current_tasksets(self) -> dict[int, TaskSet]:
        """The declared workload after every event applied so far."""
        return dict(self._tasksets)

    # -- tick component ----------------------------------------------------
    def tick(self, cycle: int) -> None:
        actions = self._actions
        while actions and actions[0][0] <= cycle:
            _, index = heapq.heappop(actions)
            self._apply(index, self.plan.events[index], cycle)

    def _apply(self, index: int, event: ScenarioEvent, cycle: int) -> None:
        client = self._clients_by_id.get(event.client_id)
        hook = getattr(client, _HOOKS[event.kind], None) if client else None
        if hook is None:
            # Unknown client, or a client type without scenario hooks:
            # the event cannot take effect — record it, change nothing.
            self.events_ignored += 1
            return
        current = self._tasksets.get(event.client_id, TaskSet())
        proposed_client = event.proposed(current)
        if self.admission is not None:
            proposed = dict(self._tasksets)
            proposed[event.client_id] = proposed_client
            if not self.admission(index, event, cycle, proposed):
                self.events_rejected += 1
                return
        if event.kind is ScenarioKind.CLIENT_JOIN:
            hook(cycle, event.assigned_tasks())
        elif event.kind is ScenarioKind.CLIENT_LEAVE:
            hook(cycle)
        else:
            hook(cycle, proposed_client)
        self._tasksets[event.client_id] = proposed_client
        self.events_applied += 1
        setattr(
            self, _COUNTER_OF[event.kind], getattr(self, _COUNTER_OF[event.kind]) + 1
        )
        if self._client_stage is not None:
            # The fast path caches per-client wake cycles; a transition
            # changes the client's release schedule out-of-band.
            self._client_stage.notify_external_activity(event.client_id)

    # -- quiescence contract ----------------------------------------------
    def is_quiescent(self) -> bool:
        """Always true: events are scheduled work, declared below."""
        return True

    def next_activity_cycle(self, cycle: int) -> int | None:
        """Earliest pending event — the leap must not jump over it.

        A head at or before ``cycle`` returns ``cycle`` itself, which
        makes the engine's leap target ``<= now`` and aborts the leap
        (the event must run on this very cycle).
        """
        if self._actions:
            head = self._actions[0][0]
            return head if head > cycle else cycle
        return None

    def counters(self) -> dict[str, int]:
        """Outcome ledger for :class:`~repro.soc.TrialResult`."""
        return {
            "events_applied": self.events_applied,
            "events_rejected": self.events_rejected,
            "events_ignored": self.events_ignored,
            "joins": self.joins,
            "leaves": self.leaves,
            "rate_changes": self.rate_changes,
            "mode_switches": self.mode_switches,
        }


def make_driver(
    scenario: "ScenarioPlan | ScenarioDriver | None",
) -> ScenarioDriver | None:
    """Normalize the ``SoCSimulation(scenario=...)`` argument.

    ``None`` stays ``None`` (no stage is registered at all); a plan gets
    a fresh driver; a pre-built driver (carrying an admission gate) is
    used as-is.
    """
    if scenario is None:
        return None
    if isinstance(scenario, ScenarioDriver):
        return scenario
    if isinstance(scenario, ScenarioPlan):
        return ScenarioDriver(scenario)
    raise ConfigurationError(
        f"scenario must be a ScenarioPlan or ScenarioDriver, got {type(scenario)!r}"
    )
