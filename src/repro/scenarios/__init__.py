"""Online workload churn: deterministic scenario plans and their consumers.

The subsystem mirrors :mod:`repro.faults`' plan/injector split across
three layers:

* :mod:`repro.scenarios.plan` — pure data: :class:`ScenarioPlan` /
  :class:`ScenarioEvent` timelines (join / leave / rate change / mode
  switch) plus the shared task-set transformations.
* :mod:`repro.scenarios.driver` — the simulator consumer:
  :class:`ScenarioDriver` applies events to live clients as an engine
  tick stage (``SoCSimulation(scenario=...)``), optionally gated by an
  admission callback.
* :mod:`repro.scenarios.transient` / :mod:`repro.scenarios.replay` —
  the analysis/service consumers: per-transition
  :class:`TransientBound` windows, session replay, and HTTP replay
  against a running ``repro serve``.
"""

from repro.scenarios.driver import AdmissionFn, ScenarioDriver, make_driver
from repro.scenarios.plan import (
    ScenarioEvent,
    ScenarioKind,
    ScenarioPlan,
    proposed_tasksets,
    rate_scaled,
)
from repro.scenarios.replay import (
    ReplayedEvent,
    replay_plan,
    replay_plan_service,
)
from repro.scenarios.transient import (
    TransientBound,
    TransientReport,
    TransientViolation,
    changed_ports,
    compute_transient_bound,
    verify_transients,
)

__all__ = [
    "AdmissionFn",
    "ReplayedEvent",
    "ScenarioDriver",
    "ScenarioEvent",
    "ScenarioKind",
    "ScenarioPlan",
    "TransientBound",
    "TransientReport",
    "TransientViolation",
    "changed_ports",
    "compute_transient_bound",
    "make_driver",
    "proposed_tasksets",
    "rate_scaled",
    "replay_plan",
    "replay_plan_service",
    "verify_transients",
]
