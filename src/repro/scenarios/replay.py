"""Replay a scenario plan through the analysis and service layers.

The simulator's :class:`~repro.scenarios.driver.ScenarioDriver` is one
consumer of a plan; this module provides the other two:

* :func:`replay_plan` — drive the events through a live
  :class:`~repro.analysis.session.AdmissionSession` (join → ``admit``,
  leave → ``evict``, rate change / mode switch → ``retask``), emitting
  one :class:`~repro.scenarios.transient.TransientBound` per committed
  transition.  This is the pure-analysis view of a churn timeline —
  what budgets would be reprogrammed, and how long each old guarantee
  keeps covering in-flight work.
* :func:`replay_plan_service` — drive the same events against a running
  ``repro serve`` daemon over its ``/admission`` and ``/evict``
  endpoints, so churn can be rehearsed against production admission
  control.  The HTTP surface has no atomic retask, so a mode switch is
  replayed as evict + admit (noted per event).

Both replays derive post-event task sets via the same pure helpers in
:mod:`repro.scenarios.plan` that the simulator driver uses, so the
three layers can never disagree about what a plan *means*.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.session import AdmissionDecision, AdmissionSession
from repro.scenarios.plan import ScenarioEvent, ScenarioKind, ScenarioPlan
from repro.scenarios.transient import TransientBound, compute_transient_bound
from repro.tasks.taskset import TaskSet

__all__ = ["ReplayedEvent", "replay_plan", "replay_plan_service"]


@dataclass(frozen=True)
class ReplayedEvent:
    """One plan event as the admission session decided it."""

    index: int
    event: ScenarioEvent
    decision: AdmissionDecision
    #: present exactly when the event committed and bounds were requested
    transient: TransientBound | None = None

    @property
    def applied(self) -> bool:
        return self.decision.committed


def _decide_event(
    session: AdmissionSession, event: ScenarioEvent, current: TaskSet
) -> AdmissionDecision:
    if event.kind is ScenarioKind.CLIENT_JOIN:
        return session.admit(event.client_id, event.assigned_tasks())
    if event.kind is ScenarioKind.CLIENT_LEAVE:
        return session.evict(event.client_id)
    proposed = event.proposed(current)
    if len(proposed) == 0:
        # A rate change on a client that runs nothing degenerates to an
        # evict (retask refuses empty submissions by design).
        return session.evict(event.client_id)
    return session.retask(event.client_id, proposed)


def replay_plan(
    session: AdmissionSession,
    plan: ScenarioPlan,
    *,
    transients: bool = True,
) -> list[ReplayedEvent]:
    """Apply every plan event to ``session`` in timeline order.

    Rejected transitions (the new mode would not be schedulable) leave
    the session untouched — exactly the admission gate the simulator's
    driver applies — and carry their
    :class:`~repro.analysis.session.RejectionWitness` in the decision.
    """
    replayed: list[ReplayedEvent] = []
    for index, event in enumerate(plan.events):
        old_tasksets = session.tasksets
        old_composition = session.composition
        current = old_tasksets.get(event.client_id, TaskSet())
        decision = _decide_event(session, event, current)
        transient = None
        if transients and decision.committed:
            transient = compute_transient_bound(
                index,
                event,
                event.cycle,
                old_tasksets,
                old_composition,
                decision.composition,
            )
        replayed.append(
            ReplayedEvent(
                index=index,
                event=event,
                decision=decision,
                transient=transient,
            )
        )
    return replayed


def replay_plan_service(
    client,  # noqa: ANN001 — ServiceClient (kept untyped: no hard dep)
    plan: ScenarioPlan,
    *,
    initial_tasksets: dict[int, TaskSet] | None = None,
) -> list[dict]:
    """Drive ``plan`` against a running daemon via HTTP.

    ``initial_tasksets`` must describe the workload the daemon's
    session currently holds (the model baseline after a ``/reset``);
    rate changes are computed against this local mirror, which is kept
    in lock-step with every committed response.  Returns one record per
    event: ``{"index", "kind", "client_id", "responses"}`` where
    ``responses`` are the raw decision payloads (two for a replayed
    retask: evict then admit).
    """
    current: dict[int, TaskSet] = dict(initial_tasksets or {})
    records: list[dict] = []
    for index, event in enumerate(plan.events):
        before = current.get(event.client_id, TaskSet())
        proposed = event.proposed(before)
        responses: list[dict] = []
        applied = True
        if event.kind is ScenarioKind.CLIENT_JOIN:
            response = client.admission(
                event.client_id, list(event.assigned_tasks()), commit=True
            )
            responses.append(response)
            applied = bool(response.get("committed"))
            if applied:
                current[event.client_id] = proposed
        elif event.kind is ScenarioKind.CLIENT_LEAVE:
            responses.append(client.evict(event.client_id))
            current[event.client_id] = TaskSet()
        else:
            # No atomic /retask on the wire: replay as evict + admit.
            # A rejected re-admission leaves the client evicted, and
            # the local mirror tracks that honestly.
            responses.append(client.evict(event.client_id))
            current[event.client_id] = TaskSet()
            if len(proposed) > 0:
                response = client.admission(
                    event.client_id, list(proposed), commit=True
                )
                responses.append(response)
                applied = bool(response.get("committed"))
                if applied:
                    current[event.client_id] = proposed
        records.append(
            {
                "index": index,
                "kind": event.kind.value,
                "client_id": event.client_id,
                "applied": applied,
                "responses": responses,
            }
        )
    return records
