"""Per-transition transient bounds and their simulation-side verification.

When a scenario event reprograms (Π, Θ) budgets mid-run, there is a
window during which jobs released under the *old* regime are still in
flight over the *new* budgets.  The mode-change protocol here is the
conservative one: an event only applies after admission control proves
the **new** composition schedulable, and the **old** guarantee is
claimed to keep holding for a bounded transient — quantified per event
as a :class:`TransientBound` whose window is the worst-case
old-composition response bound (holistic, jitter-aware) over every
still-admitted client.  Any job released before the switch therefore
either completed already or completes within the window.

That claim is *verified*, not assumed: :func:`verify_transients` checks
a finished simulation's job ledgers (the same ledgers the PR 4 fault
harness reads) and flags every monitored job whose deadline fell inside
a transient window and was missed.  ``repro churn --verify`` exits 1 on
any such violation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.composition import CompositionResult
from repro.analysis.response_time import holistic_response_bounds
from repro.errors import InfeasibleError
from repro.scenarios.plan import ScenarioEvent, ScenarioKind
from repro.tasks.taskset import TaskSet


@dataclass(frozen=True)
class TransientBound:
    """The verified reconfiguration window of one applied event."""

    event_index: int
    kind: ScenarioKind
    client_id: int
    #: cycle the budgets were reprogrammed
    cycle: int
    #: cycles after ``cycle`` during which old-regime jobs may still
    #: legitimately be draining under the new budgets
    window: int
    #: SE ports whose interface actually changed (the reprogramming
    #: work of this transition — O(log n) for a path-local update)
    reprogrammed_ports: int
    #: True when the window came from finite holistic response bounds;
    #: False when the old composition had no finite bound and the
    #: maximum old deadline was used as the fallback window
    analytic: bool = True

    @property
    def end(self) -> int:
        return self.cycle + self.window

    def covers(self, deadline: int) -> bool:
        """Whether a job deadline falls inside this transient window."""
        return self.cycle <= deadline <= self.end


@dataclass(frozen=True)
class TransientViolation:
    """A monitored job that missed its deadline inside a transient."""

    client_id: int
    deadline: int
    event_index: int


@dataclass(frozen=True)
class TransientReport:
    """Verification verdict over every transition of one trial."""

    bounds: tuple[TransientBound, ...]
    violations: tuple[TransientViolation, ...]
    #: monitored jobs whose deadline fell inside some window (how much
    #: exposure the transitions actually had)
    jobs_in_transit: int

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def max_window(self) -> int:
        return max((b.window for b in self.bounds), default=0)

    @property
    def mean_window(self) -> float:
        if not self.bounds:
            return 0.0
        return sum(b.window for b in self.bounds) / len(self.bounds)


def changed_ports(
    old: CompositionResult, new: CompositionResult
) -> list[tuple[tuple[int, int], int]]:
    """``(node, port)`` pairs whose interface differs between compositions.

    After a path-local :func:`~repro.analysis.composition.update_client`
    only the touched client's path can appear here — the count is the
    reprogramming work of the transition.
    """
    changed: list[tuple[tuple[int, int], int]] = []
    for node, interfaces in new.interfaces.items():
        before = old.interfaces.get(node)
        if before is None:
            changed.extend((node, port) for port in range(len(interfaces)))
            continue
        for port, interface in enumerate(interfaces):
            if before[port] != interface:
                changed.append((node, port))
    return changed


def compute_transient_bound(
    event_index: int,
    event: ScenarioEvent,
    cycle: int,
    old_tasksets: dict[int, TaskSet],
    old_composition: CompositionResult,
    new_composition: CompositionResult,
) -> TransientBound:
    """Bound the drain window of one admitted transition.

    The window is the worst holistic end-to-end response bound of any
    task under the *old* composition: every job released before the
    switch is, by the old guarantee, complete within that many cycles
    of its release — so ``cycle + window`` is when the system is
    provably back in steady state.  If the old composition admits no
    finite bound (it can happen right at the schedulability edge), the
    maximum old deadline is the conservative fallback and the bound is
    marked non-analytic.
    """
    populated = {c: ts for c, ts in old_tasksets.items() if len(ts) > 0}
    window = 0
    analytic = True
    if populated:
        try:
            bounds = holistic_response_bounds(populated, old_composition)
            window = max(
                bounds[client].bound_for(task.name)
                for client, taskset in populated.items()
                for task in taskset
            )
        except InfeasibleError:
            analytic = False
            window = max(
                task.period for ts in populated.values() for task in ts
            )
    return TransientBound(
        event_index=event_index,
        kind=event.kind,
        client_id=event.client_id,
        cycle=cycle,
        window=window,
        reprogrammed_ports=len(changed_ports(old_composition, new_composition)),
        analytic=analytic,
    )


def verify_transients(
    clients,  # noqa: ANN001 — iterable of TrafficGenerator
    bounds,  # noqa: ANN001 — iterable of TransientBound
    end_cycle: int,
) -> TransientReport:
    """Check a finished trial's job ledgers against transient windows.

    Mirrors :func:`repro.faults.verify.verify_isolation`: walks every
    client's :class:`~repro.clients.traffic_generator.JobRecord` and
    flags monitored jobs that (a) had to be judged by ``end_cycle``,
    (b) missed their deadline, and (c) had that deadline inside some
    transition's window — i.e. a deadline miss *during
    reconfiguration*, exactly what the mode-change protocol promises
    cannot happen.
    """
    bounds = tuple(bounds)
    violations: list[TransientViolation] = []
    in_transit = 0
    for client in clients:
        for job in client.jobs:
            if not job.monitored or job.deadline > end_cycle:
                continue
            covering = [b for b in bounds if b.covers(job.deadline)]
            if not covering:
                continue
            in_transit += 1
            if not job.met_deadline:
                violations.append(
                    TransientViolation(
                        client_id=client.client_id,
                        deadline=job.deadline,
                        event_index=covering[0].event_index,
                    )
                )
    return TransientReport(
        bounds=bounds,
        violations=tuple(violations),
        jobs_in_transit=in_transit,
    )
