"""SoC-level simulation: clients + interconnect + memory controller.

One :class:`SoCSimulation` is a single experimental *trial*: it wires a
set of clients to an interconnect and the shared memory subsystem,
advances everything cycle by cycle, and collects the metrics the
paper's figures report (blocking latency, deadline-miss ratio, per-job
success).

Per-cycle ordering (fixed, so trials are deterministic):

1. clients release due jobs and inject at most one transaction each;
2. the interconnect advances its request path (root-first pipelining);
3. the memory controller arbitrates/services;
4. the interconnect advances its response path; completed transactions
   are recorded and handed back to their client's job tracker.

The loop runs on :class:`repro.sim.engine.Engine`: each of the four
steps is a registered tick component (in the order above), so the
engine's quiescence fast path can leap over idle stretches.  Because
every stage implements the quiescence contract, fast-path trials are
bit-for-bit identical to slow-path trials — ``fast_path=False``
restores the literal cycle-by-cycle loop for differential testing.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field

from repro.clients.traffic_generator import TrafficGenerator
from repro.errors import ConfigurationError, SimulationError
from repro.faults.injectors import FaultOrchestrator, make_orchestrator
from repro.faults.plan import FaultPlan
from repro.scenarios.driver import ScenarioDriver, make_driver
from repro.scenarios.plan import ScenarioPlan
from repro.interconnects.base import Interconnect
from repro.memory.controller import ArbitrationPolicy, MemoryController
from repro.memory.dram import FixedLatencyDevice
from repro.memory.request import MemoryRequest, reset_request_ids
from repro.observability.tracer import (
    ObservabilityConfig,
    Tracer,
    make_tracer,
)
from repro.sim.clock import Clock
from repro.sim.engine import Engine
from repro.sim.stats import CycleAccounting, LatencyRecorder, SummaryStatistics


@dataclass
class TrialResult:
    """Everything one simulation trial produced."""

    horizon: int
    recorder: LatencyRecorder
    #: monitored job outcomes per client: (judged, missed)
    job_outcomes: dict[int, tuple[int, int]] = field(default_factory=dict)
    requests_released: int = 0
    requests_completed: int = 0
    requests_dropped: int = 0
    requests_in_flight: int = 0
    #: cycles the engine executed / leapt over (quiescence fast path)
    cycles_executed: int = 0
    cycles_skipped: int = 0
    #: sha256 over the completion stream; equal digests = equal traces
    trace_digest: str = ""
    #: fault-injection ledger (empty when no orchestrator was attached);
    #: see FaultOrchestrator.counters()
    fault_counters: dict[str, int] = field(default_factory=dict)
    #: workload-churn ledger (empty when no scenario driver was
    #: attached); see ScenarioDriver.counters()
    scenario_counters: dict[str, int] = field(default_factory=dict)

    @property
    def deadline_miss_ratio(self) -> float:
        return self.recorder.deadline_miss_ratio

    @property
    def mean_blocking(self) -> float:
        if not self.recorder.blocking_times:
            return 0.0
        return sum(self.recorder.blocking_times) / len(self.recorder.blocking_times)

    @property
    def success(self) -> bool:
        """True when no monitored job missed its deadline (Fig. 7)."""
        return all(missed == 0 for _, missed in self.job_outcomes.values())

    @property
    def jobs_judged(self) -> int:
        return sum(judged for judged, _ in self.job_outcomes.values())

    @property
    def jobs_missed(self) -> int:
        return sum(missed for _, missed in self.job_outcomes.values())

    def blocking_summary(self) -> SummaryStatistics:
        return self.recorder.blocking_summary()

    def response_summary(self) -> SummaryStatistics:
        return self.recorder.response_summary()


class _ClientStage:
    """Stage 1: clients release and inject, only while ``cycle < horizon``.

    A client is quiescent when it says so itself (nothing pending) or
    when the interconnect guarantees its injections are refused without
    side effects (``injection_blocked_until``).  Job releases are never
    deferred into a leap, even for blocked clients: request ids are
    allocated globally in release order and tie-break EDF arbitration,
    so every client's next release caps the leap and lands on its exact
    cycle.
    """

    def __init__(
        self,
        clients: list[TrafficGenerator],
        interconnect: Interconnect,
        horizon: int,
        clock: Clock,
        fast_path: bool = False,
        inject=None,
    ) -> None:
        self._clients = clients
        self._interconnect = interconnect
        # The tracer shims the inject callable to attach trace contexts;
        # untraced runs use the interconnect's bound method directly.
        self._inject = inject if inject is not None else interconnect.try_inject
        self._horizon = horizon
        self._clock = clock
        self._index_of = {
            client.client_id: index for index, client in enumerate(clients)
        }
        # Clients outside the quiescence contract (e.g. trace replayers)
        # pin the stage non-quiescent until the horizon; leaps are still
        # possible during the drain, when clients no longer tick.
        self._legacy = any(
            not hasattr(client, "is_quiescent")
            or not hasattr(client, "next_activity_cycle")
            for client in clients
        )
        # Per-client wake cache for the fast path: a quiescent client's
        # ticks before its declared next activity are pure no-ops, so
        # they can be elided even on cycles other stages force to
        # execute.  The reference path ticks every client every cycle.
        self._fast = fast_path and not self._legacy
        self._wake = [0] * len(clients)
        # Indices of clients that were non-quiescent after their last
        # tick (their wake is cycle + 1, so they tick every executed
        # cycle and keep their membership fresh).  Lets the engine's
        # quiescence check touch only the handful of active clients
        # instead of scanning the full roster.
        self._active: set[int] = set()

    def tick(self, cycle: int) -> None:
        if cycle >= self._horizon:
            return
        inject = self._inject
        if not self._fast:
            for client in self._clients:
                client.tick(cycle, inject)
            return
        wake = self._wake
        active = self._active
        for index, client in enumerate(self._clients):
            if cycle < wake[index]:
                continue
            client.tick(cycle, inject)
            if client.is_quiescent():
                activity = client.next_activity_cycle(cycle)
                wake[index] = (
                    self._horizon if activity is None else activity
                )
                active.discard(index)
            else:
                wake[index] = cycle + 1
                active.add(index)

    def notify_external_activity(self, client_id: int) -> None:
        """Invalidate a client's cached wake after out-of-band input.

        The wake cache assumes a client's pending state only changes
        inside its own tick; the fault orchestrator violates that by
        pushing rogue traffic directly into a (possibly sleeping)
        client's queue, so it must reset the cache or the burst would
        sit unissued until the client's next declared release.
        """
        if not self._fast:
            return
        index = self._index_of.get(client_id)
        if index is not None:
            self._wake[index] = 0

    def is_quiescent(self) -> bool:
        # Past the horizon the stage never ticks a client again, so it
        # is a pure no-op regardless of leftover pending traffic.
        now = self._clock.now
        if now >= self._horizon:
            return True
        if self._legacy:
            return False
        blocked_until = self._interconnect.injection_blocked_until
        if self._fast:
            # Only clients seen non-quiescent at their last tick can
            # veto; everyone else declared a wake cycle still ahead.
            for index in self._active:
                client = self._clients[index]
                if blocked_until(client.client_id, now) is None:
                    return False
            return True
        for client in self._clients:
            if client.is_quiescent():
                continue
            if blocked_until(client.client_id, now) is None:
                return False
        return True

    def next_activity_cycle(self, cycle: int) -> int | None:
        if cycle >= self._horizon:
            return None
        if self._legacy:
            return cycle  # never leap while legacy clients may tick
        blocked_until = self._interconnect.injection_blocked_until
        earliest: int | None = None
        wake = self._wake if self._fast else None
        for index, client in enumerate(self._clients):
            if wake is not None and cycle < wake[index]:
                # The cached wake IS the client's declared activity
                # (client state only changes inside its own tick, so
                # the declaration made then still holds).
                activity = wake[index]
            elif client.is_quiescent():
                # A quiescent client's own declaration already covers
                # everything it could do (releases and injections).
                activity = client.next_activity_cycle(cycle)
            else:
                blocked = blocked_until(client.client_id, cycle)
                if blocked is None:
                    activity = cycle  # may inject: the engine won't leap
                else:
                    # Refusals are side-effect free, but releases still
                    # must happen on time (global request-id order); -1
                    # means the refusal guarantee only expires on fabric
                    # action, which caps the leap via the fabric's own
                    # declaration.
                    activity = client.next_activity_cycle(cycle)
                    if blocked >= 0 and (
                        activity is None or blocked < activity
                    ):
                        activity = blocked
            if activity is not None and (earliest is None or activity < earliest):
                earliest = activity
        if earliest is None or earliest >= self._horizon:
            return None
        return earliest


class _RequestPathStage:
    """Stage 2: the interconnect's request pipeline."""

    def __init__(self, interconnect: Interconnect) -> None:
        self._interconnect = interconnect

    def tick(self, cycle: int) -> None:
        self._interconnect.tick_request_path(cycle)

    def is_quiescent(self) -> bool:
        return self._interconnect.is_quiescent()

    def next_activity_cycle(self, cycle: int) -> int | None:
        return self._interconnect.next_activity_cycle(cycle)

    def on_cycles_skipped(self, start: int, cycles: int) -> None:
        self._interconnect.on_cycles_skipped(start, cycles)


class _ResponseStage:
    """Stage 4: deliver responses, record metrics, update job trackers.

    Also folds every completion into a running sha256 — the trial's
    *trace digest*.  Two runs with equal digests delivered the same
    requests on the same cycles with the same blocking accounting,
    which is how the differential tests certify fast-path equivalence.
    """

    def __init__(
        self,
        interconnect: Interconnect,
        client_by_id: dict[int, TrafficGenerator],
        recorder: LatencyRecorder,
        warmup: int,
        tracer: Tracer | None = None,
    ) -> None:
        self._interconnect = interconnect
        self._client_by_id = client_by_id
        self._recorder = recorder
        self._warmup = warmup
        self._tracer = tracer
        self.completed_total = 0
        self._hasher = hashlib.sha256()

    def tick(self, cycle: int) -> None:
        tracer = self._tracer
        for request in self._interconnect.tick_response_path(cycle):
            self.completed_total += 1
            self._hasher.update(self._trace_record(request))
            if cycle >= self._warmup:
                self._recorder.record_completion(
                    response_time=request.response_time,
                    blocking_time=request.blocking_cycles,
                    met_deadline=request.complete_cycle
                    <= request.absolute_deadline,
                )
            if tracer is not None:
                tracer.on_completion(request, cycle)
            client = self._client_by_id.get(request.client_id)
            if client is None:
                raise SimulationError(
                    f"response for unknown client {request.client_id}"
                )
            client.on_response(request)

    @staticmethod
    def _trace_record(request: MemoryRequest) -> bytes:
        return (
            f"{request.rid},{request.client_id},{request.release_cycle},"
            f"{request.complete_cycle},{request.blocking_cycles};"
        ).encode()

    @property
    def trace_digest(self) -> str:
        return self._hasher.hexdigest()

    def is_quiescent(self) -> bool:
        # Delivery cycles are pre-computed in the response heap; the
        # earliest one is declared as the next activity.
        return True

    def next_activity_cycle(self, cycle: int) -> int | None:
        # Only the response heap matters here: request-path activity is
        # already declared by the request stage, so re-scanning it via
        # interconnect.next_activity_cycle would double the leap cost.
        return self._interconnect.next_response_cycle()


class SoCSimulation:
    """A complete system trial around one interconnect."""

    def __init__(
        self,
        clients: list[TrafficGenerator],
        interconnect: Interconnect,
        controller: MemoryController | None = None,
        clock: Clock | None = None,
        fast_path: bool = True,
        accounting: CycleAccounting | None = None,
        observability: "bool | ObservabilityConfig | Tracer | None" = None,
        faults: "FaultPlan | FaultOrchestrator | None" = None,
        scenario: "ScenarioPlan | ScenarioDriver | None" = None,
    ) -> None:
        if not clients:
            raise ConfigurationError("need at least one client")
        ids = [client.client_id for client in clients]
        if len(set(ids)) != len(ids):
            raise ConfigurationError(f"duplicate client ids: {sorted(ids)}")
        if max(ids) >= interconnect.n_clients:
            raise ConfigurationError(
                f"client id {max(ids)} exceeds interconnect size "
                f"{interconnect.n_clients}"
            )
        self.clients = clients
        self._client_by_id = {client.client_id: client for client in clients}
        self.interconnect = interconnect
        self.controller = (
            controller
            if controller is not None
            # Unit-service provider: one transaction per cycle, the
            # transaction-slot time base of the schedulability model.
            else MemoryController(FixedLatencyDevice(1), queue_capacity=4)
        )
        self.interconnect.attach_controller(self.controller)
        self.clock = clock if clock is not None else Clock()
        self.recorder = LatencyRecorder()
        self.fast_path = fast_path
        self.accounting = accounting
        #: opt-in request tracing (None = off, zero overhead); see
        #: repro.observability — the tracer owns the span ring and the
        #: metrics registry for this trial.
        self.tracer = make_tracer(observability)
        #: opt-in fault injection (None = off, zero overhead): a
        #: FaultPlan (even an empty one) attaches a FaultOrchestrator
        #: as an extra tick stage ahead of the clients — see
        #: repro.faults.  An empty plan is observation-free: the
        #: instrumented run is bit-for-bit identical to an
        #: uninstrumented one (differential tests assert it).
        self.faults = make_orchestrator(faults, tracer=self.tracer)
        #: opt-in workload churn (None = off, zero overhead): a
        #: ScenarioPlan (even an empty one) attaches a ScenarioDriver
        #: as an extra tick stage between faults and clients — see
        #: repro.scenarios.  An empty plan is bit-for-bit inert on both
        #: engine paths (differential tests assert it).
        self.scenario = make_driver(scenario)
        #: engine counters from the last run() (see TrialResult)
        self.cycles_executed = 0
        self.cycles_skipped = 0
        self.leaps = 0

    @classmethod
    def from_model(
        cls,
        model,
        *,
        seed: int | str = 1,
        buffer_capacity: int = 8,
        **kwargs,
    ) -> "SoCSimulation":
        """Bring up a BlueScale trial from a prebuilt
        :class:`~repro.analysis.model.SystemModel`.

        Builds the quadtree fabric for the model's topology, programs
        every SE from the model's already-composed baseline (no
        analysis re-run), and attaches one deterministic
        :class:`TrafficGenerator` per non-empty baseline client.
        Remaining keyword arguments are forwarded to the constructor
        (``fast_path``, ``observability``, ``faults``, ...).
        """
        from repro.core.interconnect import BlueScaleInterconnect

        interconnect = BlueScaleInterconnect(
            model.n_clients,
            buffer_capacity=buffer_capacity,
            fanout=model.topology.fanout,
        )
        interconnect.configure_from_model(model)
        clients = [
            TrafficGenerator(
                client,
                taskset,
                rng=random.Random(f"soc-from-model/{seed}/{client}"),
            )
            for client, taskset in sorted(model.client_tasksets.items())
            if len(taskset) > 0
        ]
        return cls(clients, interconnect, **kwargs)

    def run(
        self, horizon: int, drain: int | None = None, warmup: int = 0
    ) -> TrialResult:
        """Simulate ``horizon`` cycles of releases plus a drain window.

        ``drain`` extra cycles (default: enough for queued work to
        finish under light load) let in-flight transactions complete so
        their latencies are recorded; no new jobs are released during
        the drain.

        ``warmup`` cycles at the start are simulated normally but their
        completions are excluded from the latency/miss statistics —
        steady-state measurement without the synchronous-start
        transient.  Job-level outcomes (Fig. 7's success) always cover
        the whole run.
        """
        if horizon <= 0:
            raise ConfigurationError(f"horizon must be positive, got {horizon}")
        if not 0 <= warmup < horizon:
            raise ConfigurationError(
                f"warmup must lie within [0, horizon), got {warmup}"
            )
        if drain is None:
            drain = min(4 * horizon, 20_000)
        reset_request_ids()
        # The engine gets its own clock so every run starts at cycle 0,
        # exactly like the original inline ``for cycle in range(...)``.
        engine = Engine(
            clock=Clock(frequency_mhz=self.clock.frequency_mhz),
            fast_path=self.fast_path,
            accounting=self.accounting,
        )
        # With the engine fast path on, components may also elide work
        # their quiescence contracts prove to be pure no-ops (empty mux
        # nodes / SEs, idle clients); results are identical either way.
        self.interconnect.fast_tick = self.fast_path
        inject = None
        if self.tracer is not None:
            inject = self.tracer.wrap_inject(self.interconnect.try_inject)
        if self.faults is not None:
            # The fault wrapper sits OUTSIDE the tracer's: perturbation
            # happens at the port, before the fabric sees the request,
            # while duplicated/re-injected requests still enter traced.
            inject = self.faults.wrap_inject(
                inject if inject is not None else self.interconnect.try_inject
            )
        response_stage = _ResponseStage(
            self.interconnect,
            self._client_by_id,
            self.recorder,
            warmup,
            tracer=self.tracer,
        )
        client_stage = _ClientStage(
            self.clients,
            self.interconnect,
            horizon,
            engine.clock,
            fast_path=self.fast_path,
            inject=inject,
        )
        if self.faults is not None:
            self.faults.bind(
                self.clients,
                self.interconnect,
                self.controller,
                client_stage=client_stage,
            )
            # First stage: a fault armed for cycle c perturbs that
            # cycle's releases, arbitration and service.
            engine.register(self.faults, name="faults")
        if self.scenario is not None:
            # Ahead of the clients: a transition at cycle c changes
            # that cycle's releases (a join's first jobs, a switch's
            # withdrawal) before the client stage runs it.
            self.scenario.bind(
                self.clients, self.interconnect, client_stage=client_stage
            )
            engine.register(self.scenario, name="scenario")
        engine.register(client_stage, name="clients")
        engine.register(
            _RequestPathStage(self.interconnect), name="request_path"
        )
        engine.register(self.controller, name="controller")
        engine.register(response_stage, name="response_path")
        engine.run(horizon + drain)
        self.cycles_executed = engine.cycles_executed
        self.cycles_skipped = engine.cycles_skipped
        self.leaps = engine.leaps
        self.clock.now = horizon + drain
        if self.tracer is not None:
            self.tracer.record_controller_stats(self.controller)
        return self._collect(horizon, response_stage)

    def _collect(
        self, horizon: int, response_stage: _ResponseStage
    ) -> TrialResult:
        released = sum(client.released_requests for client in self.clients)
        dropped = sum(client.dropped_requests for client in self.clients)
        fault_counters: dict[str, int] = {}
        if self.faults is not None:
            # The orchestrator's perturbations move requests between the
            # ledger's columns: accepted duplicates were released by the
            # fault (not a client), port drops vanished at the port, and
            # delayed requests still in the hold queue are in flight.
            fault_counters = self.faults.counters()
            released += self.faults.requests_duplicated
            dropped += self.faults.requests_dropped
        for _ in range(dropped):
            self.recorder.record_drop()
        in_flight = (
            self.interconnect.requests_in_flight()
            + self.interconnect.responses_in_flight()
            + self.controller.in_flight
            + sum(client.pending_count for client in self.clients)
            + (self.faults.requests_held if self.faults is not None else 0)
        )
        completed = response_stage.completed_total
        if completed + dropped + in_flight != released:
            raise SimulationError(
                f"request conservation violated: released={released}, "
                f"completed={completed}, dropped={dropped}, in_flight={in_flight}"
            )
        job_outcomes = {
            client.client_id: (
                client.monitored_jobs_judged(horizon),
                client.monitored_job_misses(horizon),
            )
            for client in self.clients
        }
        return TrialResult(
            horizon=horizon,
            recorder=self.recorder,
            job_outcomes=job_outcomes,
            requests_released=released,
            requests_completed=completed,
            requests_dropped=dropped,
            requests_in_flight=in_flight,
            cycles_executed=self.cycles_executed,
            cycles_skipped=self.cycles_skipped,
            trace_digest=response_stage.trace_digest,
            fault_counters=fault_counters,
            scenario_counters=(
                self.scenario.counters() if self.scenario is not None else {}
            ),
        )


def build_unit_service_controller(queue_capacity: int = 4) -> MemoryController:
    """The provider used by the schedulability-aligned experiments."""
    return MemoryController(
        FixedLatencyDevice(1),
        queue_capacity=queue_capacity,
        policy=ArbitrationPolicy.FCFS,
    )
