"""SoC-level simulation: clients + interconnect + memory controller.

One :class:`SoCSimulation` is a single experimental *trial*: it wires a
set of clients to an interconnect and the shared memory subsystem,
advances everything cycle by cycle, and collects the metrics the
paper's figures report (blocking latency, deadline-miss ratio, per-job
success).

Per-cycle ordering (fixed, so trials are deterministic):

1. clients release due jobs and inject at most one transaction each;
2. the interconnect advances its request path (root-first pipelining);
3. the memory controller arbitrates/services;
4. the interconnect advances its response path; completed transactions
   are recorded and handed back to their client's job tracker.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.clients.traffic_generator import TrafficGenerator
from repro.errors import ConfigurationError, SimulationError
from repro.interconnects.base import Interconnect
from repro.memory.controller import ArbitrationPolicy, MemoryController
from repro.memory.dram import FixedLatencyDevice
from repro.memory.request import reset_request_ids
from repro.sim.clock import Clock
from repro.sim.stats import LatencyRecorder, SummaryStatistics


@dataclass
class TrialResult:
    """Everything one simulation trial produced."""

    horizon: int
    recorder: LatencyRecorder
    #: monitored job outcomes per client: (judged, missed)
    job_outcomes: dict[int, tuple[int, int]] = field(default_factory=dict)
    requests_released: int = 0
    requests_completed: int = 0
    requests_dropped: int = 0
    requests_in_flight: int = 0

    @property
    def deadline_miss_ratio(self) -> float:
        return self.recorder.deadline_miss_ratio

    @property
    def mean_blocking(self) -> float:
        if not self.recorder.blocking_times:
            return 0.0
        return sum(self.recorder.blocking_times) / len(self.recorder.blocking_times)

    @property
    def success(self) -> bool:
        """True when no monitored job missed its deadline (Fig. 7)."""
        return all(missed == 0 for _, missed in self.job_outcomes.values())

    @property
    def jobs_judged(self) -> int:
        return sum(judged for judged, _ in self.job_outcomes.values())

    @property
    def jobs_missed(self) -> int:
        return sum(missed for _, missed in self.job_outcomes.values())

    def blocking_summary(self) -> SummaryStatistics:
        return self.recorder.blocking_summary()

    def response_summary(self) -> SummaryStatistics:
        return self.recorder.response_summary()


class SoCSimulation:
    """A complete system trial around one interconnect."""

    def __init__(
        self,
        clients: list[TrafficGenerator],
        interconnect: Interconnect,
        controller: MemoryController | None = None,
        clock: Clock | None = None,
    ) -> None:
        if not clients:
            raise ConfigurationError("need at least one client")
        ids = [client.client_id for client in clients]
        if len(set(ids)) != len(ids):
            raise ConfigurationError(f"duplicate client ids: {sorted(ids)}")
        if max(ids) >= interconnect.n_clients:
            raise ConfigurationError(
                f"client id {max(ids)} exceeds interconnect size "
                f"{interconnect.n_clients}"
            )
        self.clients = clients
        self._client_by_id = {client.client_id: client for client in clients}
        self.interconnect = interconnect
        self.controller = (
            controller
            if controller is not None
            # Unit-service provider: one transaction per cycle, the
            # transaction-slot time base of the schedulability model.
            else MemoryController(FixedLatencyDevice(1), queue_capacity=4)
        )
        self.interconnect.attach_controller(self.controller)
        self.clock = clock if clock is not None else Clock()
        self.recorder = LatencyRecorder()

    def run(
        self, horizon: int, drain: int | None = None, warmup: int = 0
    ) -> TrialResult:
        """Simulate ``horizon`` cycles of releases plus a drain window.

        ``drain`` extra cycles (default: enough for queued work to
        finish under light load) let in-flight transactions complete so
        their latencies are recorded; no new jobs are released during
        the drain.

        ``warmup`` cycles at the start are simulated normally but their
        completions are excluded from the latency/miss statistics —
        steady-state measurement without the synchronous-start
        transient.  Job-level outcomes (Fig. 7's success) always cover
        the whole run.
        """
        if horizon <= 0:
            raise ConfigurationError(f"horizon must be positive, got {horizon}")
        if not 0 <= warmup < horizon:
            raise ConfigurationError(
                f"warmup must lie within [0, horizon), got {warmup}"
            )
        if drain is None:
            drain = min(4 * horizon, 20_000)
        reset_request_ids()
        inject = self.interconnect.try_inject
        completed_total = 0
        for cycle in range(horizon + drain):
            if cycle < horizon:
                for client in self.clients:
                    client.tick(cycle, inject)
            self.interconnect.tick_request_path(cycle)
            self.controller.tick(cycle)
            for request in self.interconnect.tick_response_path(cycle):
                completed_total += 1
                if cycle >= warmup:
                    self.recorder.record_completion(
                        response_time=request.response_time,
                        blocking_time=request.blocking_cycles,
                        met_deadline=request.complete_cycle
                        <= request.absolute_deadline,
                    )
                client = self._client_by_id.get(request.client_id)
                if client is None:
                    raise SimulationError(
                        f"response for unknown client {request.client_id}"
                    )
                client.on_response(request)
        self.clock.now = horizon + drain
        return self._collect(horizon, completed_total)

    def _collect(self, horizon: int, completed_total: int) -> TrialResult:
        released = sum(client.released_requests for client in self.clients)
        dropped = sum(client.dropped_requests for client in self.clients)
        for _ in range(dropped):
            self.recorder.record_drop()
        in_flight = (
            self.interconnect.requests_in_flight()
            + self.interconnect.responses_in_flight()
            + self.controller.in_flight
            + sum(client.pending_count for client in self.clients)
        )
        completed = completed_total
        if completed + dropped + in_flight != released:
            raise SimulationError(
                f"request conservation violated: released={released}, "
                f"completed={completed}, dropped={dropped}, in_flight={in_flight}"
            )
        job_outcomes = {
            client.client_id: (
                client.monitored_jobs_judged(horizon),
                client.monitored_job_misses(horizon),
            )
            for client in self.clients
        }
        return TrialResult(
            horizon=horizon,
            recorder=self.recorder,
            job_outcomes=job_outcomes,
            requests_released=released,
            requests_completed=completed,
            requests_dropped=dropped,
            requests_in_flight=in_flight,
        )


def build_unit_service_controller(queue_capacity: int = 4) -> MemoryController:
    """The provider used by the schedulability-aligned experiments."""
    return MemoryController(
        FixedLatencyDevice(1),
        queue_capacity=queue_capacity,
        policy=ArbitrationPolicy.FCFS,
    )
