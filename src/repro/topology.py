"""Tree topologies shared by the analysis and the simulator.

BlueScale organizes its Scale Elements as a quadtree (fan-out 4);
BlueTree and GSMTree use binary trees (fan-out 2).  The same indexing
convention covers both: node ``(x, y)`` sits at depth ``x`` (0 = root,
adjacent to the memory subsystem) and is the ``y``-th node at that
depth.  Node ``(x, y)``'s children are ``(x+1, k·y) .. (x+1, k·y+k−1)``
for fan-out ``k``; at the deepest level the children are clients, with
client ``c`` attached to leaf node ``(L, c // k)`` port ``c % k``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

NodeId = tuple[int, int]


@dataclass(frozen=True)
class TreeTopology:
    """A complete k-ary tree connecting ``n_clients`` leaves to one root.

    ``n_clients`` is rounded up to the next power of ``fanout``
    internally; ports beyond ``n_clients`` are simply left idle, which
    matches how a hardware tree with unpopulated ports behaves.
    """

    n_clients: int
    fanout: int = 4

    def __post_init__(self) -> None:
        if self.n_clients < 1:
            raise ConfigurationError(f"need at least one client, got {self.n_clients}")
        if self.fanout < 2:
            raise ConfigurationError(f"fanout must be >= 2, got {self.fanout}")

    @property
    def depth(self) -> int:
        """L: the deepest SE level.  Levels run 0 (root) .. L (leaves)."""
        levels = 1
        capacity = self.fanout
        while capacity < self.n_clients:
            capacity *= self.fanout
            levels += 1
        return levels - 1

    @property
    def capacity(self) -> int:
        """Leaf-port capacity of the (complete) tree: fanout^(L+1)."""
        return self.fanout ** (self.depth + 1)

    def nodes_at_level(self, level: int) -> int:
        """Number of nodes at ``level`` (before pruning empty subtrees)."""
        if not 0 <= level <= self.depth:
            raise ConfigurationError(
                f"level {level} out of range [0, {self.depth}]"
            )
        return self.fanout**level

    def all_nodes(self) -> list[NodeId]:
        """All non-empty nodes, root first, then level by level.

        A node is non-empty when at least one real client lives in its
        subtree; complete-tree nodes whose subtree is entirely idle are
        pruned (they would synthesize away in hardware too).
        """
        nodes: list[NodeId] = []
        for level in range(self.depth + 1):
            for order in range(self.nodes_at_level(level)):
                if self.subtree_client_range(level, order)[0] < self.n_clients:
                    nodes.append((level, order))
        return nodes

    def n_nodes(self) -> int:
        return len(self.all_nodes())

    # -- structural relations ------------------------------------------------
    def children(self, node: NodeId) -> list[NodeId]:
        """Child SE ids of an internal node (empty list for leaf SEs)."""
        level, order = node
        if level >= self.depth:
            return []
        return [
            (level + 1, self.fanout * order + port) for port in range(self.fanout)
        ]

    def parent(self, node: NodeId) -> NodeId | None:
        level, order = node
        if level == 0:
            return None
        return (level - 1, order // self.fanout)

    def leaf_of_client(self, client_id: int) -> tuple[NodeId, int]:
        """The leaf node a client attaches to, and the port index used."""
        self._check_client(client_id)
        return (self.depth, client_id // self.fanout), client_id % self.fanout

    def clients_of_leaf(self, node: NodeId) -> list[int]:
        """Real client ids on a leaf node's ports (idle ports excluded)."""
        level, order = node
        if level != self.depth:
            raise ConfigurationError(f"{node} is not a leaf-level node")
        first = order * self.fanout
        return [c for c in range(first, first + self.fanout) if c < self.n_clients]

    def subtree_client_range(self, level: int, order: int) -> tuple[int, int]:
        """Half-open client-id range [lo, hi) covered by node (level, order)."""
        span = self.fanout ** (self.depth + 1 - level)
        lo = order * span
        return lo, lo + span

    def path_to_root(self, client_id: int) -> list[NodeId]:
        """Nodes a client's requests traverse, leaf first, root last."""
        self._check_client(client_id)
        node, _ = self.leaf_of_client(client_id)
        path = [node]
        parent = self.parent(node)
        while parent is not None:
            path.append(parent)
            parent = self.parent(parent)
        return path

    def hops_to_memory(self, client_id: int) -> int:
        """Number of tree nodes between a client and the memory subsystem."""
        return len(self.path_to_root(client_id))

    def system_model(self, client_tasksets, **kwargs):
        """Freeze this topology plus a workload into a
        :class:`~repro.analysis.model.SystemModel` (composed once,
        ready for :class:`~repro.analysis.session.AdmissionSession`
        admission queries).  Keyword arguments are forwarded to
        :meth:`SystemModel.build <repro.analysis.model.SystemModel.build>`.
        """
        from repro.analysis.model import SystemModel

        return SystemModel.build(self, client_tasksets, **kwargs)

    def _check_client(self, client_id: int) -> None:
        if not 0 <= client_id < self.n_clients:
            raise ConfigurationError(
                f"client {client_id} out of range [0, {self.n_clients})"
            )


def quadtree(n_clients: int) -> TreeTopology:
    """BlueScale's quadtree of Scale Elements."""
    return TreeTopology(n_clients=n_clients, fanout=4)


def binary_tree(n_clients: int) -> TreeTopology:
    """BlueTree/GSMTree's binary multiplexer tree."""
    return TreeTopology(n_clients=n_clients, fanout=2)
