"""Interconnect factories shared by the Fig. 6 / Fig. 7 experiments.

Each factory builds one of the paper's six evaluated interconnects and
configures it for a given per-client workload, reproducing Sec. 6's
setup: BlueTree family with blocking factor 2, GSMTree-TDM with equal
reservations, GSMTree-FBSP with workload-proportional reservations,
AXI-IC^RT with workload-based bandwidth regulation, and BlueScale with
interfaces from the composition of Sec. 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.analysis.interface_selection import SelectionConfig
from repro.core.interconnect import BlueScaleInterconnect
from repro.errors import ConfigurationError
from repro.interconnects.axi_icrt import AxiIcRtInterconnect
from repro.interconnects.base import Interconnect
from repro.interconnects.bluetree import (
    BlueTreeInterconnect,
    BlueTreeSmoothInterconnect,
)
from repro.interconnects.gsmtree import gsmtree_fbsp, gsmtree_tdm
from repro.tasks.taskset import TaskSet

#: the evaluation order used in the paper's figures
INTERCONNECT_NAMES = (
    "AXI-IC^RT",
    "BlueTree",
    "BlueTree-Smooth",
    "GSMTree-TDM",
    "GSMTree-FBSP",
    "BlueScale",
)


@dataclass(frozen=True)
class FactoryConfig:
    """Shared experiment-level configuration of the baselines."""

    #: BlueTree/-Smooth blocking factor (paper: default settings, α = 2)
    bluetree_alpha: int = 2
    #: AXI-IC^RT bandwidth-regulation window and over-provisioning margin
    axi_window: int = 200
    axi_margin: float = 1.5
    #: arbitration slow-down of the centralized arbiter (1 = full speed;
    #: >1 couples in the Fig. 5(c) frequency wall, used by ablations)
    axi_arbitration_interval: int = 1
    #: BlueScale port-buffer depth and interface-selection search width
    bluescale_buffer_capacity: int = 2
    selection_candidates: int = 64


DEFAULT_FACTORY_CONFIG = FactoryConfig()

Factory = Callable[[int, dict[int, TaskSet]], Interconnect]


def _client_utilizations(
    n_clients: int, tasksets: dict[int, TaskSet]
) -> list[float]:
    return [
        tasksets.get(c, TaskSet()).utilization_float for c in range(n_clients)
    ]


def axi_budgets(
    n_clients: int,
    tasksets: dict[int, TaskSet],
    window: int,
    margin: float,
) -> list[int]:
    """Workload-based per-client budgets for AXI-IC^RT's regulation.

    Proportional-to-utilization with head-room, but never below twice
    the client's largest job burst — a client must be able to absorb a
    synchronous release of its tasks within one regulation window, or
    regulation itself induces deadline misses at low load.
    """
    budgets = []
    for client in range(n_clients):
        taskset = tasksets.get(client, TaskSet())
        proportional = round(taskset.utilization_float * window * margin)
        burst_floor = 2 * max((t.wcet for t in taskset), default=0)
        budgets.append(min(window, max(1, proportional, burst_floor)))
    return budgets


def build_interconnect(
    name: str,
    n_clients: int,
    tasksets: dict[int, TaskSet],
    config: FactoryConfig = DEFAULT_FACTORY_CONFIG,
) -> Interconnect:
    """Build and configure one of the paper's six interconnects."""
    if name == "AXI-IC^RT":
        interconnect = AxiIcRtInterconnect(
            n_clients, arbitration_interval=config.axi_arbitration_interval
        )
        budgets = axi_budgets(
            n_clients, tasksets, config.axi_window, config.axi_margin
        )
        interconnect.configure_regulation(budgets, config.axi_window)
        return interconnect
    if name == "BlueTree":
        return BlueTreeInterconnect(n_clients, alpha=config.bluetree_alpha)
    if name == "BlueTree-Smooth":
        return BlueTreeSmoothInterconnect(n_clients, alpha=config.bluetree_alpha)
    if name == "GSMTree-TDM":
        return gsmtree_tdm(n_clients)
    if name == "GSMTree-FBSP":
        return gsmtree_fbsp(
            n_clients, _client_utilizations(n_clients, tasksets)
        )
    if name == "BlueScale":
        interconnect = BlueScaleInterconnect(
            n_clients, buffer_capacity=config.bluescale_buffer_capacity
        )
        interconnect.configure(
            tasksets,
            SelectionConfig(max_period_candidates=config.selection_candidates),
        )
        return interconnect
    raise ConfigurationError(
        f"unknown interconnect {name!r}; expected one of {INTERCONNECT_NAMES}"
    )
