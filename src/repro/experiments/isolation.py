"""Experiment FI — temporal isolation under a misbehaving client.

The fault-injection companion to Fig. 6: every design faces the *same*
workload twice — once fault-free, once with client 0 turned rogue
(periodic bursts of tight-deadline transactions far beyond its declared
task set, via :meth:`repro.faults.plan.FaultPlan.rogue_client`) — and
the question is what happens to everyone *else*.  Reported per design:

* the victims' deadline-miss ratio without and with the aggressor
  (aggressor jobs are excluded from both, so the aggressor's
  self-inflicted misses never count);
* an **isolation score** ``1 - max(0, miss_fault - miss_base)`` —
  1.0 means the aggressor could not move the victims at all;
* for BlueScale, the victims' observed worst responses checked against
  the fault-oblivious analytical bounds of
  :mod:`repro.analysis.response_time` (``bound_violations`` must be 0
  for the paper's compositional claim to survive the fault campaign).

The workload is drawn at *low* utilization (default 40–55%) so that
fault-free runs are comfortably schedulable everywhere: any victim
degradation in the faulted run is then attributable to the aggressor,
not to overload.  Structured as the standard runtime triple
(:func:`build_isolation_specs` / :func:`run_isolation_trial` /
:func:`reduce_isolation`), with a batch entry point
(:func:`run_isolation_batch`, wired as ``run_isolation_trial.batch``)
that ships every (trial, design, baseline/faulted) simulation of a
chunk through :func:`repro.sim.batched.run_many` — rogue-burst plans
compile into the SoA request schedule, so the whole campaign advances
in numpy lock-step under the default backend and stays bit-identical
to the scalar engine (trace digests are folded into each trial's tags
to prove it).
"""

from __future__ import annotations

import random
import statistics
from dataclasses import dataclass, field
from typing import Sequence

from repro.clients.traffic_generator import TrafficGenerator
from repro.errors import ConfigurationError
from repro.experiments.factory import (
    DEFAULT_FACTORY_CONFIG,
    FactoryConfig,
    build_interconnect,
)
from repro.experiments.reporting import format_table
from repro.faults.plan import FaultPlan
from repro.faults.verify import verify_isolation, victim_miss_from_outcomes
from repro.runtime import (
    Executor,
    ExecutionHooks,
    MetricSet,
    SerialExecutor,
    TrialOutcome,
    TrialSpec,
    derive_seeds,
)
from repro.soc import SoCSimulation
from repro.tasks.generators import generate_client_tasksets

#: designs compared by default — one per arbitration family, kept small
#: so the CI campaign stays fast; pass the full Fig. 6 tuple for papers
ISOLATION_INTERCONNECTS = (
    "AXI-IC^RT",
    "BlueTree",
    "GSMTree-TDM",
    "BlueScale",
)


@dataclass(frozen=True)
class IsolationConfig:
    """Scale and aggressor model of the isolation campaign."""

    n_clients: int = 8
    trials: int = 5
    horizon: int = 4_000
    drain: int = 2_000
    #: deliberately below Fig. 6's 70–90%: fault-free runs must be
    #: schedulable so victim degradation is attributable to the fault
    utilization_low: float = 0.40
    utilization_high: float = 0.55
    tasks_per_client: int = 3
    period_min: int = 100
    period_max: int = 1_500
    #: the rogue client and its burst model (see FaultPlan.rogue_client)
    aggressor: int = 0
    rogue_start: int = 400
    burst_size: int = 24
    burst_every: int = 60
    burst_deadline_slack: int = 16
    seed: int = 2022
    factory: FactoryConfig = DEFAULT_FACTORY_CONFIG
    fast_path: bool = True

    def __post_init__(self) -> None:
        if not 0 < self.utilization_low <= self.utilization_high:
            raise ConfigurationError("invalid utilization range")
        if self.trials < 1 or self.horizon < 1:
            raise ConfigurationError("trials and horizon must be positive")
        if not 0 <= self.aggressor < self.n_clients:
            raise ConfigurationError(
                f"aggressor {self.aggressor} not among {self.n_clients} clients"
            )
        if self.rogue_start >= self.horizon:
            raise ConfigurationError("rogue window starts beyond the horizon")

    def fault_plan(self) -> FaultPlan:
        """The aggressor's misbehaviour for one trial."""
        return FaultPlan.rogue_client(
            self.aggressor,
            self.rogue_start,
            self.horizon,
            burst_size=self.burst_size,
            burst_every=self.burst_every,
            deadline_slack=self.burst_deadline_slack,
        )


def build_isolation_specs(
    config: IsolationConfig = IsolationConfig(),
    interconnects: tuple[str, ...] = ISOLATION_INTERCONNECTS,
) -> list[TrialSpec]:
    """One spec per trial; each trial runs every design twice."""
    seeds = derive_seeds(
        f"isolation/{config.seed}/{config.n_clients}", config.trials
    )
    return [
        TrialSpec.make(
            "isolation",
            trial,
            seed,
            config=config,
            interconnects=tuple(interconnects),
        )
        for trial, seed in enumerate(seeds)
    ]


def _isolation_sims(spec: TrialSpec):
    """Build one workload draw's (baseline, faulted) pair per design.

    Returns ``(tasksets, entries)`` with ``entries`` a list of
    ``(name, base_sim, fault_sim)`` triples.  The taskset draw comes
    from the trial RNG, and each client's private stream is re-derived
    identically for every simulation, so all designs — and the baseline
    and faulted run of each — see the same declared workload.
    """
    config: IsolationConfig = spec.param("config")
    interconnects: tuple[str, ...] = spec.param("interconnects")
    trial_rng = random.Random(spec.seed)
    utilization = trial_rng.uniform(
        config.utilization_low, config.utilization_high
    )
    tasksets = generate_client_tasksets(
        trial_rng,
        config.n_clients,
        config.tasks_per_client,
        utilization,
        period_min=config.period_min,
        period_max=config.period_max,
    )
    plan = config.fault_plan()

    def build(name: str, faults: FaultPlan | None) -> SoCSimulation:
        interconnect = build_interconnect(
            name, config.n_clients, tasksets, config.factory
        )
        clients = [
            TrafficGenerator(
                client_id,
                taskset,
                rng=random.Random(spec.client_seed(client_id)),
            )
            for client_id, taskset in tasksets.items()
        ]
        return SoCSimulation(
            clients, interconnect, fast_path=config.fast_path, faults=faults
        )

    entries = [
        (name, build(name, None), build(name, plan))
        for name in interconnects
    ]
    return tasksets, entries


def _isolation_fold(
    spec: TrialSpec,
    tasksets,  # noqa: ANN001
    entries,  # noqa: ANN001
    results,  # noqa: ANN001 - [base, fault] per entry, flattened
) -> MetricSet:
    """Fold one trial's per-design result pairs into its metric set."""
    config: IsolationConfig = spec.param("config")
    victims = set(range(config.n_clients)) - {config.aggressor}
    scalars: dict[str, float] = {}
    tags = {"experiment": "isolation", "trial": str(spec.index)}
    for (name, _, fault_sim), base_result, fault_result in zip(
        entries, results[0::2], results[1::2]
    ):
        miss_base = victim_miss_from_outcomes(
            base_result.job_outcomes, victims
        )
        miss_fault = victim_miss_from_outcomes(
            fault_result.job_outcomes, victims
        )
        scalars[f"{name}/victim_miss_base"] = miss_base
        scalars[f"{name}/victim_miss_fault"] = miss_fault
        scalars[f"{name}/isolation"] = 1.0 - max(0.0, miss_fault - miss_base)
        scalars[f"{name}/rogue_requests"] = float(
            fault_result.fault_counters.get("rogue_requests", 0)
        )
        # Completion-trace digests certify bit-for-bit equality of the
        # campaign across sim backends and executors (golden-trace
        # regression; the CI backend-diff step compares them).
        tags[f"{name}/trace_base"] = base_result.trace_digest
        tags[f"{name}/trace_fault"] = fault_result.trace_digest
        composition = getattr(fault_sim.interconnect, "composition", None)
        if composition is not None:
            # Only BlueScale carries an interface composition, hence
            # analytical per-client bounds to hold the faulted run to.
            # The clients' job ledgers and worst-response tables are
            # populated on both backends (the batched finalizer writes
            # them back), so the verdict is backend-independent.
            verdict = verify_isolation(
                fault_sim.clients,
                tasksets,
                composition,
                end_cycle=config.horizon,
                victims=victims,
            )
            scalars[f"{name}/bounds_checked"] = float(verdict.bounds_checked)
            scalars[f"{name}/bound_violations"] = float(
                len(verdict.violations)
            )
            scalars[f"{name}/worst_victim_response"] = float(
                verdict.worst_observed
            )
            scalars[f"{name}/tightest_bound"] = float(verdict.tightest_bound)
            if verdict.violations:
                tags[f"{name}/violation"] = verdict.violations[0].describe()
    return MetricSet(scalars=scalars, tags=tags)


def run_isolation_trial(spec: TrialSpec) -> MetricSet:
    """Baseline + faulted run of one workload draw, per design.

    Pure function of the spec (see :func:`_isolation_sims`); runs each
    simulation on the scalar engine one at a time.
    """
    config: IsolationConfig = spec.param("config")
    tasksets, entries = _isolation_sims(spec)
    results = []
    for _, base_sim, fault_sim in entries:
        results.append(base_sim.run(config.horizon, drain=config.drain))
        results.append(fault_sim.run(config.horizon, drain=config.drain))
    return _isolation_fold(spec, tasksets, entries, results)


def run_isolation_batch(specs: Sequence[TrialSpec]) -> list[MetricSet]:
    """Batch entry point: the whole chunk's simulations in lock-step.

    Builds every (trial, design, baseline/faulted) simulation and hands
    them to :func:`repro.sim.batched.run_many`; rogue-burst fault plans
    compile into the SoA request schedule, so faulted runs ride the
    kernels alongside their baselines (under the "scalar" backend or
    for ineligible trials, run_many falls back per trial).  The folded
    metric sets are bit-identical to :func:`run_isolation_trial`'s.
    """
    from repro.sim.batched import run_many

    per_spec = []
    sims: list[SoCSimulation] = []
    horizons: list[int] = []
    drains: list[int] = []
    for spec in specs:
        config: IsolationConfig = spec.param("config")
        tasksets, entries = _isolation_sims(spec)
        per_spec.append((tasksets, entries))
        for _, base_sim, fault_sim in entries:
            sims.extend((base_sim, fault_sim))
            horizons.extend((config.horizon, config.horizon))
            drains.extend((config.drain, config.drain))
    results = run_many(sims, horizon=horizons, drain=drains)
    folded: list[MetricSet] = []
    at = 0
    for spec, (tasksets, entries) in zip(specs, per_spec):
        take = 2 * len(entries)
        folded.append(
            _isolation_fold(spec, tasksets, entries, results[at : at + take])
        )
        at += take
    return folded


run_isolation_trial.batch = run_isolation_batch


@dataclass
class DesignIsolation:
    """Per-design isolation measurements across trials."""

    name: str
    miss_base: list[float] = field(default_factory=list)
    miss_fault: list[float] = field(default_factory=list)
    isolation_scores: list[float] = field(default_factory=list)
    bound_violations: int = 0
    bounds_checked_trials: int = 0

    @property
    def mean_miss_base(self) -> float:
        return statistics.fmean(self.miss_base) if self.miss_base else 0.0

    @property
    def mean_miss_fault(self) -> float:
        return statistics.fmean(self.miss_fault) if self.miss_fault else 0.0

    @property
    def mean_isolation(self) -> float:
        if not self.isolation_scores:
            return 1.0
        return statistics.fmean(self.isolation_scores)

    @property
    def degraded(self) -> bool:
        """Did the aggressor measurably hurt the victims?"""
        return self.mean_miss_fault > self.mean_miss_base + 1e-9


@dataclass
class IsolationResult:
    config: IsolationConfig
    metrics: dict[str, DesignIsolation]
    #: trials whose runner raised (captured by the executor, skipped here)
    failed_trials: int = 0

    @property
    def total_bound_violations(self) -> int:
        return sum(m.bound_violations for m in self.metrics.values())

    def metric_set(self) -> MetricSet:
        scalars: dict[str, float] = {}
        for name, m in self.metrics.items():
            scalars[f"{name}/victim_miss_base"] = m.mean_miss_base
            scalars[f"{name}/victim_miss_fault"] = m.mean_miss_fault
            scalars[f"{name}/isolation"] = m.mean_isolation
        scalars["bound_violations"] = float(self.total_bound_violations)
        return MetricSet(
            scalars=scalars,
            tags={
                "experiment": "isolation",
                "n_clients": str(self.config.n_clients),
            },
        )


def reduce_isolation(
    config: IsolationConfig,
    interconnects: tuple[str, ...],
    outcomes: list[TrialOutcome],
) -> IsolationResult:
    """Fold trial metric sets; failed trials are counted, not folded."""
    metrics = {name: DesignIsolation(name) for name in interconnects}
    failed = 0
    for outcome in outcomes:
        if outcome.failed:
            failed += 1
            continue
        for name in interconnects:
            m = metrics[name]
            m.miss_base.append(outcome.metrics[f"{name}/victim_miss_base"])
            m.miss_fault.append(outcome.metrics[f"{name}/victim_miss_fault"])
            m.isolation_scores.append(outcome.metrics[f"{name}/isolation"])
            if f"{name}/bounds_checked" in outcome.metrics:
                m.bounds_checked_trials += int(
                    outcome.metrics[f"{name}/bounds_checked"]
                )
                m.bound_violations += int(
                    outcome.metrics[f"{name}/bound_violations"]
                )
    return IsolationResult(
        config=config, metrics=metrics, failed_trials=failed
    )


def run_isolation(
    config: IsolationConfig = IsolationConfig(),
    interconnects: tuple[str, ...] = ISOLATION_INTERCONNECTS,
    executor: Executor | None = None,
    hooks: ExecutionHooks | None = None,
) -> IsolationResult:
    """Run the isolation campaign through any executor."""
    executor = executor or SerialExecutor()
    interconnects = tuple(interconnects)
    specs = build_isolation_specs(config, interconnects)
    outcomes = executor.map(run_isolation_trial, specs, hooks)
    return reduce_isolation(config, interconnects, outcomes)


def format_isolation(result: IsolationResult) -> str:
    """Render the per-design isolation report."""
    rows = []
    for name, m in result.metrics.items():
        checked = (
            f"{m.bound_violations} in {m.bounds_checked_trials} trials"
            if m.bounds_checked_trials
            else "-"
        )
        rows.append(
            [
                name,
                f"{100 * m.mean_miss_base:.2f}",
                f"{100 * m.mean_miss_fault:.2f}",
                f"{m.mean_isolation:.3f}",
                checked,
            ]
        )
    config = result.config
    table = format_table(
        [
            "Interconnect",
            "Victim miss, fault-free (%)",
            "Victim miss, rogue client (%)",
            "Isolation score",
            "Bound violations",
        ],
        rows,
        title=(
            f"Isolation — {config.n_clients} clients, client "
            f"{config.aggressor} rogue (bursts of {config.burst_size} every "
            f"{config.burst_every} cycles), {config.trials} trials"
        ),
    )
    lines = [table]
    if result.failed_trials:
        lines.append(f"WARNING: {result.failed_trials} trial(s) failed")
    if result.total_bound_violations:
        lines.append(
            f"FAIL: {result.total_bound_violations} analytical-bound "
            "violation(s) — temporal isolation does not hold"
        )
    else:
        lines.append(
            "All victim responses within fault-oblivious analytical bounds."
        )
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI convenience
    result = run_isolation()
    print(format_isolation(result))


if __name__ == "__main__":  # pragma: no cover
    main()
