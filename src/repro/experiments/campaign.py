"""Experiment campaigns: batch runs, archives, regression comparison.

A *campaign* is a named list of experiment specs executed in one go,
with every result archived as JSON under a results directory plus a
manifest.  ``compare_campaigns`` diffs two archives and reports metric
regressions — the tooling that keeps a long-lived reproduction honest
across refactors (the bench suite asserts shapes; campaigns track the
actual numbers over time).

Experiments emit their comparison metrics through the shared
:class:`repro.runtime.MetricSet` schema — every result class exposes
``metric_set()``, so the campaign layer needs no per-experiment metric
glue.  The manifest records each experiment's wall-clock and the
executor width it ran under, so archived campaigns track the
serial-vs-parallel speedup across snapshots.

This is the *ad-hoc* archive layer, kept for programmatic one-off
batches; the declarative, resumable, CI-gated successor is
:mod:`repro.campaigns` (spec files, sharded checkpointed execution,
golden-baseline diffing).  The delta arithmetic is shared —
:class:`MetricDelta` here *is* :class:`repro.campaigns.gate.MetricDelta`,
so both layers report missing/NaN/zero-baseline metrics explicitly.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.campaigns.gate import MetricDelta, metric_deltas
from repro.errors import ConfigurationError
from repro.experiments.persistence import save_json
from repro.runtime import Executor, MetricSet, extract_metric_set


@dataclass(frozen=True)
class ExperimentSpec:
    """One experiment in a campaign.

    ``runner`` returns the experiment's result object; its metrics are
    taken from ``result.metric_set()`` (via
    :func:`repro.runtime.extract_metric_set`) unless an explicit
    ``metrics`` adapter is given for results that predate the schema.
    """

    name: str
    #: zero-argument callable returning the result object
    runner: Callable[[], Any]
    #: optional adapter: result -> MetricSet (or {name: float} mapping)
    metrics: Callable[[Any], Any] | None = None

    def extract_metrics(self, result: Any) -> MetricSet:
        if self.metrics is not None:
            return extract_metric_set(self.metrics(result))
        return extract_metric_set(result)


@dataclass
class CampaignRecord:
    """What one campaign run produced."""

    label: str
    directory: Path
    #: executor width the experiments ran under (1 = serial)
    workers: int = 1
    results: dict[str, Any] = field(default_factory=dict)
    metric_sets: dict[str, MetricSet] = field(default_factory=dict)
    seconds: dict[str, float] = field(default_factory=dict)

    @property
    def metrics(self) -> dict[str, dict[str, float]]:
        """Plain per-experiment metric dicts (the manifest's shape)."""
        return {
            name: metric_set.as_dict()
            for name, metric_set in self.metric_sets.items()
        }


def default_specs(
    quick: bool = True, executor: Executor | None = None
) -> list[ExperimentSpec]:
    """The standard campaign: every paper artefact at bench scale."""
    from repro.experiments.fig5 import run_fig5
    from repro.experiments.fig6 import Fig6Config, run_fig6
    from repro.experiments.table1 import run_table1

    trials = 3 if quick else 10
    horizon = 8_000 if quick else 20_000

    def table1_metrics(rows) -> dict[str, float]:  # noqa: ANN001
        return {
            f"{row.design}/luts": float(row.report.luts) for row in rows
        }

    def fig5_metrics(result) -> dict[str, float]:  # noqa: ANN001
        return {
            "bluescale/area@64": result.area["BlueScale"][5],
            "axi/fmax@64": result.fmax_mhz["AXI-IC^RT"][5],
            "crossover_eta": float(result.crossover_eta() or 0),
        }

    return [
        ExperimentSpec("table1", run_table1, metrics=table1_metrics),
        ExperimentSpec("fig5", run_fig5, metrics=fig5_metrics),
        ExperimentSpec(
            "fig6-16",
            lambda: run_fig6(
                Fig6Config(n_clients=16, trials=trials, horizon=horizon),
                executor=executor,
            ),
        ),
    ]


def run_campaign(
    specs: list[ExperimentSpec],
    results_dir: str | Path,
    label: str | None = None,
    workers: int = 1,
) -> CampaignRecord:
    """Run every spec, archiving results and a manifest.

    ``workers`` is recorded in the manifest (it is the executor width
    the specs' runners were built with); per-experiment wall-clock goes
    next to it so two archived campaigns document the speedup.
    """
    if not specs:
        raise ConfigurationError("campaign needs at least one experiment")
    names = [spec.name for spec in specs]
    if len(set(names)) != len(names):
        raise ConfigurationError(f"duplicate experiment names: {names}")
    label = label or time.strftime("%Y%m%d-%H%M%S")
    directory = Path(results_dir) / label
    directory.mkdir(parents=True, exist_ok=True)
    record = CampaignRecord(label=label, directory=directory, workers=workers)
    for spec in specs:
        start = time.perf_counter()
        result = spec.runner()
        elapsed = time.perf_counter() - start
        record.results[spec.name] = result
        record.metric_sets[spec.name] = spec.extract_metrics(result)
        record.seconds[spec.name] = elapsed
        save_json(result, directory / f"{spec.name}.json", label=spec.name)
    manifest = {
        "label": label,
        "experiments": names,
        "metrics": record.metrics,
        "seconds": record.seconds,
        "wall_clock": {
            name: {"seconds": record.seconds[name], "workers": workers}
            for name in names
        },
        "workers": workers,
    }
    with open(directory / "manifest.json", "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
    return record


def load_manifest(directory: str | Path) -> dict[str, Any]:
    """Read a campaign's manifest back."""
    path = Path(directory) / "manifest.json"
    if not path.exists():
        raise ConfigurationError(f"{directory} has no campaign manifest")
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def compare_campaigns(
    before_dir: str | Path,
    after_dir: str | Path,
    threshold: float = 0.10,
) -> list[MetricDelta]:
    """Metrics whose relative change exceeds ``threshold``.

    Every edge case yields an *explicit* delta rather than a silent
    skip or a crash (the shared :class:`repro.campaigns.gate.MetricDelta`
    semantics): a metric — or a whole experiment — present on only one
    side reports with ``before``/``after`` of ``None`` and a NaN
    relative change (which always exceeds any threshold); a NaN value
    on one side reports likewise; a zero baseline never divides (the
    change is ``±inf``, reported).  Only a metric that is genuinely
    within the band — including two NaNs, which moved nothing — stays
    out of the list.
    """
    if threshold < 0:
        raise ConfigurationError("threshold must be non-negative")
    before = load_manifest(before_dir)["metrics"]
    after = load_manifest(after_dir)["metrics"]
    deltas: list[MetricDelta] = []
    for experiment in sorted(set(before) | set(after)):
        before_metrics = before.get(experiment, {})
        after_metrics = after.get(experiment, {})
        deltas.extend(
            delta
            for delta in metric_deltas(
                before_metrics, after_metrics, experiment=experiment
            )
            if delta.exceeds(threshold)
        )
    return deltas


def format_deltas(deltas: list[MetricDelta]) -> str:
    from repro.campaigns.gate import format_metric
    from repro.experiments.reporting import format_table

    if not deltas:
        return "no metric moved beyond the threshold"

    def change(delta: MetricDelta) -> str:
        value = delta.relative_change
        if math.isnan(value):
            return delta.status if delta.status != "changed" else "nan"
        if math.isinf(value):
            return "+inf" if value > 0 else "-inf"
        return f"{value:+.1%}"

    rows = [
        [
            d.experiment,
            d.metric,
            format_metric(d.before),
            format_metric(d.after),
            change(d),
        ]
        for d in deltas
    ]
    return format_table(
        ["experiment", "metric", "before", "after", "change"],
        rows,
        title="campaign regressions",
    )
