"""Plain-text rendering of experiment results (the "figures").

Every experiment module returns structured result objects; this module
turns them into the aligned text tables the harness prints — the same
rows/series the paper's tables and figures report.
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned text table."""
    cells = [[str(h) for h in headers]] + [
        [_fmt(value) for value in row] for row in rows
    ]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(cells[0], widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in cells[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}" if abs(value) < 100 else f"{value:.1f}"
    return str(value)


def format_markdown_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render a GitHub-flavored markdown table.

    The campaign summarizer's sibling of :func:`format_table`: same
    cell formatting (:func:`_fmt`), pipe-delimited so reports render in
    any markdown viewer.  Pipes inside cell values are escaped.
    """

    def cell(value: object) -> str:
        return _fmt(value).replace("|", "\\|")

    lines = []
    if title:
        lines.append(f"### {title}")
        lines.append("")
    lines.append("| " + " | ".join(cell(h) for h in headers) + " |")
    lines.append("|" + "|".join(" --- " for _ in headers) + "|")
    for row in rows:
        lines.append("| " + " | ".join(cell(value) for value in row) + " |")
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: dict[str, Sequence[float]],
    title: str | None = None,
) -> str:
    """Render figure series (one column per x, one row per curve)."""
    headers = [x_label] + [_fmt(x) for x in x_values]
    rows = [[name] + list(values) for name, values in series.items()]
    return format_table(headers, rows, title=title)


def format_bar_chart(
    values: dict[str, float],
    title: str | None = None,
    width: int = 40,
    unit: str = "",
) -> str:
    """Render a horizontal ASCII bar chart (terminal 'figure').

    Bars are scaled to the largest value; zero/negative values render
    as empty bars.
    """
    if width < 1:
        raise ValueError(f"width must be positive, got {width}")
    lines = []
    if title:
        lines.append(title)
    if not values:
        return "\n".join(lines + ["(no data)"])
    label_width = max(len(str(label)) for label in values)
    peak = max(max(values.values()), 0.0)
    for label, value in values.items():
        if peak > 0 and value > 0:
            filled = max(1, round(width * value / peak))
        else:
            filled = 0
        bar = "#" * filled
        lines.append(
            f"{str(label).ljust(label_width)}  {bar.ljust(width)}  "
            f"{_fmt(value)}{unit}"
        )
    return "\n".join(lines)


def format_supply_demand(
    taskset,  # noqa: ANN001 - TaskSet (kept loose to avoid import cycle)
    interface,  # noqa: ANN001 - ResourceInterface
    horizon: int | None = None,
    width: int = 60,
    height: int = 12,
) -> str:
    """ASCII plot of dbf(t) vs sbf(t) — the Sec. 5 schedulability
    picture.  Demand must stay at or below supply everywhere."""
    from repro.analysis.prm import dbf, sbf

    if horizon is None:
        horizon = 3 * max(task.period for task in taskset)
    xs = list(range(0, horizon + 1, max(1, horizon // width)))
    demand = [float(dbf(t, taskset)) for t in xs]
    supply = [float(sbf(t, interface)) for t in xs]
    chart = format_curves(
        [float(x) for x in xs],
        {"dbf (demand)": demand, "sbf (supply)": supply},
        title=(
            f"dbf vs sbf — interface (Π={interface.period}, "
            f"Θ={interface.budget})"
        ),
        height=height,
        width=width,
    )
    violation = next(
        (t for t, d, s in zip(xs, demand, supply) if d > s), None
    )
    verdict = (
        "demand ≤ supply at every sampled t"
        if violation is None
        else f"VIOLATION: dbf > sbf at t = {violation}"
    )
    return chart + "\n" + verdict


def format_curves(
    x_values: Sequence[float],
    series: dict[str, Sequence[float]],
    title: str | None = None,
    height: int = 10,
    width: int = 60,
) -> str:
    """Render line series as a coarse ASCII scatter plot.

    Each curve gets a distinct marker; points are binned onto a
    ``width x height`` character grid.  Useful for eyeballing the
    Fig. 7 success-ratio curves in a terminal.
    """
    if height < 2 or width < 2:
        raise ValueError("chart must be at least 2x2")
    markers = "ox+*#@%&"
    all_y = [y for values in series.values() for y in values]
    if not all_y or not x_values:
        return (title or "") + "\n(no data)"
    y_min, y_max = min(all_y), max(all_y)
    x_min, x_max = min(x_values), max(x_values)
    y_span = (y_max - y_min) or 1.0
    x_span = (x_max - x_min) or 1.0
    grid = [[" "] * width for _ in range(height)]
    legend = []
    for index, (name, values) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        legend.append(f"{marker} = {name}")
        for x, y in zip(x_values, values):
            column = round((x - x_min) / x_span * (width - 1))
            row = height - 1 - round((y - y_min) / y_span * (height - 1))
            grid[row][column] = marker
    lines = []
    if title:
        lines.append(title)
    lines.append(f"y: [{_fmt(y_min)}, {_fmt(y_max)}]")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f"x: [{_fmt(x_min)}, {_fmt(x_max)}]   " + "   ".join(legend))
    return "\n".join(lines)
