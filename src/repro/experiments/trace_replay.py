"""Replay one fig6/fig7 trial with request tracing enabled.

The experiment trial functions (:func:`repro.experiments.fig6.run_fig6_trial`,
:func:`repro.experiments.fig7.run_fig7_trial`) are pure functions of their
spec, so any trial can be reconstructed after the fact: re-derive the same
spec, re-draw the same workload from the same seeds, and run the same
simulation — this time with a :class:`~repro.observability.Tracer` attached
and a ring large enough to hold the full span stream.  The replay's
completion-trace digest equals the original trial's ``{name}/trace`` tag
(tracing is observation-only; the differential tests assert this), which is
what makes ``repro trace`` trustworthy: the timeline it prints is from *the*
fig6/fig7 run, not a lookalike.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.clients.accelerator import AcceleratorClient
from repro.clients.processor import ProcessorClient
from repro.clients.traffic_generator import TrafficGenerator
from repro.errors import ConfigurationError
from repro.experiments.factory import build_interconnect
from repro.experiments.fig6 import Fig6Config, build_fig6_specs
from repro.experiments.fig7 import (
    Fig7Config,
    _build_trial_tasksets,
    build_fig7_specs,
)
from repro.observability import ObservabilityConfig, Tracer
from repro.soc import SoCSimulation
from repro.tasks.generators import generate_client_tasksets
from repro.tasks.taskset import TaskSet

#: default replay ring: big enough that a CLI-scale trial never evicts,
#: so the worst-blocking request's full journey is reconstructable
DEFAULT_REPLAY_RING = 1 << 20


@dataclass(frozen=True)
class TracedTrial:
    """A replayed trial plus the tracer that observed it."""

    experiment: str
    trial: int
    interconnect: str
    tracer: Tracer
    trace_digest: str


def _replay_tracer(ring_capacity: int, sample_every: int) -> Tracer:
    return Tracer(
        ObservabilityConfig(
            ring_capacity=ring_capacity, sample_every=sample_every
        )
    )


def trace_fig6_trial(
    config: Fig6Config = Fig6Config(),
    trial: int = 0,
    interconnect: str = "BlueScale",
    ring_capacity: int = DEFAULT_REPLAY_RING,
    sample_every: int = 1,
) -> TracedTrial:
    """Re-run fig6 trial ``trial`` against one design, traced.

    The workload derivation mirrors ``run_fig6_trial`` exactly: the
    taskset draw comes from the trial RNG (independent of which designs
    are simulated) and each client's stream is re-derived from the
    spec, so the replay is bit-identical to the untraced original.
    """
    specs = build_fig6_specs(config, (interconnect,))
    if not 0 <= trial < len(specs):
        raise ConfigurationError(
            f"trial {trial} out of range: config builds {len(specs)} specs"
        )
    spec = specs[trial]
    trial_rng = random.Random(spec.seed)
    utilization = trial_rng.uniform(
        config.utilization_low, config.utilization_high
    )
    tasksets = generate_client_tasksets(
        trial_rng,
        config.n_clients,
        config.tasks_per_client,
        utilization,
        period_min=config.period_min,
        period_max=config.period_max,
    )
    clients = [
        TrafficGenerator(
            client_id,
            taskset,
            rng=random.Random(spec.client_seed(client_id)),
        )
        for client_id, taskset in tasksets.items()
    ]
    tracer = _replay_tracer(ring_capacity, sample_every)
    simulation = SoCSimulation(
        clients,
        build_interconnect(
            interconnect, config.n_clients, tasksets, config.factory
        ),
        fast_path=config.fast_path,
        observability=tracer,
    )
    result = simulation.run(config.horizon, drain=config.drain)
    return TracedTrial(
        experiment="fig6",
        trial=trial,
        interconnect=interconnect,
        tracer=tracer,
        trace_digest=result.trace_digest,
    )


def trace_fig7_trial(
    config: Fig7Config = Fig7Config(),
    trial: int = 0,
    interconnect: str = "BlueScale",
    ring_capacity: int = DEFAULT_REPLAY_RING,
    sample_every: int = 1,
) -> TracedTrial:
    """Re-run fig7 spec ``trial`` against one design, traced.

    ``trial`` indexes the spec list built by ``build_fig7_specs`` (one
    spec per utilization × trial pair, in sweep order); narrow
    ``config.utilizations`` to a single point to address trials within
    one utilization level directly.
    """
    specs = build_fig7_specs(config, (interconnect,))
    if not 0 <= trial < len(specs):
        raise ConfigurationError(
            f"trial {trial} out of range: config builds {len(specs)} specs"
        )
    spec = specs[trial]
    utilization: float = spec.param("utilization")
    accelerator_id = config.n_processors
    rng = random.Random(spec.seed)
    application, interference, accelerator_tasks = _build_trial_tasksets(
        config, utilization, rng
    )
    combined: dict[int, TaskSet] = {
        client: application[client].merged_with(
            interference.get(client, TaskSet())
        )
        for client in application
    }
    combined[accelerator_id] = accelerator_tasks.merged_with(
        interference.get(accelerator_id, TaskSet())
    )
    clients: list = [
        ProcessorClient(
            client,
            application[client],
            interference.get(client, TaskSet()),
            rng=random.Random(spec.client_seed(client)),
        )
        for client in application
    ]
    clients.append(
        AcceleratorClient(
            accelerator_id,
            accelerator_tasks.merged_with(
                interference.get(accelerator_id, TaskSet())
            ),
            bandwidth_cap=1.0 / config.n_clients,
            rng=random.Random(spec.client_seed(accelerator_id)),
        )
    )
    tracer = _replay_tracer(ring_capacity, sample_every)
    simulation = SoCSimulation(
        clients,
        build_interconnect(
            interconnect, config.n_clients, combined, config.factory
        ),
        fast_path=config.fast_path,
        observability=tracer,
    )
    result = simulation.run(config.horizon, drain=config.drain)
    return TracedTrial(
        experiment="fig7",
        trial=trial,
        interconnect=interconnect,
        tracer=tracer,
        trace_digest=result.trace_digest,
    )
