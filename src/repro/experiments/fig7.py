"""Experiment F7 — Fig. 7: system-level automotive case study.

Reproduces Sec. 6.4: 16/64 processors plus a DNN hardware accelerator
run the ten safety + ten function automotive tasks; interference tasks
raise the system to a swept *target utilization* (x-axis).  For each
(interconnect, utilization) point the experiment runs several trials
and reports the **success ratio**: the fraction of trials in which no
safety or function task missed any deadline.

Structured as a runtime triple: :func:`build_fig7_specs` emits one
spec per (utilization, trial) pair, :func:`run_fig7_trial` simulates
one pair against every interconnect, and :func:`reduce_fig7` folds the
per-trial successes into the per-utilization ratios.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence

from repro.clients.accelerator import AcceleratorClient
from repro.clients.processor import ProcessorClient
from repro.errors import ConfigurationError
from repro.experiments.factory import (
    DEFAULT_FACTORY_CONFIG,
    INTERCONNECT_NAMES,
    FactoryConfig,
    build_interconnect,
)
from repro.experiments.reporting import format_series
from repro.runtime import (
    Executor,
    ExecutionHooks,
    MetricSet,
    SerialExecutor,
    TrialOutcome,
    TrialSpec,
    derive_seeds,
)
from repro.soc import SoCSimulation
from repro.tasks.taskset import TaskSet
from repro.workloads.automotive import assign_case_study
from repro.workloads.interference import build_interference, dnn_interference_taskset


@dataclass(frozen=True)
class Fig7Config:
    """Scale of the case-study sweep.

    ``n_processors`` counts processor clients; one additional client is
    the DNN accelerator (the paper activates one HA per experimental
    group), so the interconnect serves ``n_processors + 1`` clients...
    rounded into the tree's port capacity.
    """

    n_processors: int = 16
    trials: int = 10
    horizon: int = 20_000
    drain: int = 6_000
    utilizations: tuple[float, ...] = (0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)
    seed: int = 59  # DAC'22 is the 59th DAC
    factory: FactoryConfig = DEFAULT_FACTORY_CONFIG
    #: engine quiescence fast path; results are identical either way
    fast_path: bool = True
    #: opt-in request tracing (repro.observability); observation-only,
    #: so measured results are identical with it on or off
    observability: bool = False
    #: also run the compositional analysis per trial, emitting whether
    #: the drawn workload is *analytically* schedulable on BlueScale
    #: (``analysis/schedulable``) next to the simulated success
    analysis: bool = False
    #: analysis engine backend ("scalar"/"vectorized"); None uses the
    #: process-wide default — verdicts are identical either way
    analysis_backend: str | None = None

    @classmethod
    def paper_scale(cls, n_processors: int = 16) -> "Fig7Config":
        """The paper's scale: 200 trials per utilization point, 13
        utilization levels (10%–90% at 5% steps); horizon reduced from
        the paper's 300 s per the same argument as Fig6Config.paper_scale.
        Expect a day-scale runtime at 64 processors."""
        return cls(
            n_processors=n_processors,
            trials=200,
            horizon=200_000,
            drain=20_000,
            utilizations=tuple(round(0.10 + 0.05 * i, 2) for i in range(17)),
        )

    def __post_init__(self) -> None:
        if self.n_processors < 1:
            raise ConfigurationError("need at least one processor")
        if any(not 0 < u <= 1 for u in self.utilizations):
            raise ConfigurationError("target utilizations must be in (0, 1]")

    @property
    def n_clients(self) -> int:
        """Interconnect size: processors plus the accelerator."""
        return self.n_processors + 1


@dataclass
class Fig7Result:
    config: Fig7Config
    #: success ratio per interconnect per utilization point
    success_ratio: dict[str, list[float]] = field(default_factory=dict)
    #: fraction of trials analytically schedulable (BlueScale
    #: composition) per utilization point; empty unless
    #: ``config.analysis`` was on
    analysis_ratio: list[float] = field(default_factory=list)

    def dominated_by_bluescale(self, other: str) -> bool:
        """True when BlueScale's curve is >= ``other``'s at every point."""
        blue = self.success_ratio["BlueScale"]
        return all(b >= o for b, o in zip(blue, self.success_ratio[other]))

    def metric_set(self) -> MetricSet:
        """Aggregate metrics: mean success ratio over the sweep, plus
        the ratio at the highest utilization point (the stress case)."""
        scalars: dict[str, float] = {}
        for name, series in self.success_ratio.items():
            if series:
                scalars[f"{name}/success_mean"] = sum(series) / len(series)
                scalars[f"{name}/success_at_max_u"] = series[-1]
        if self.analysis_ratio:
            scalars["analysis/schedulable_mean"] = sum(
                self.analysis_ratio
            ) / len(self.analysis_ratio)
        return MetricSet(
            scalars=scalars,
            tags={
                "experiment": "fig7",
                "n_processors": str(self.config.n_processors),
            },
        )


def _build_trial_tasksets(
    config: Fig7Config, utilization: float, rng: random.Random
) -> tuple[dict[int, TaskSet], dict[int, TaskSet], TaskSet]:
    """(application, interference, accelerator) task sets for one trial."""
    application = assign_case_study(config.n_processors)
    accelerator_id = config.n_processors
    accelerator_tasks = dnn_interference_taskset(client_id=accelerator_id)
    app_utils = {
        client: taskset.utilization_float
        for client, taskset in application.items()
    }
    app_utils[accelerator_id] = accelerator_tasks.utilization_float
    interference = build_interference(rng, app_utils, utilization)
    return application, interference, accelerator_tasks


def build_fig7_specs(
    config: Fig7Config = Fig7Config(),
    interconnects: tuple[str, ...] = INTERCONNECT_NAMES,
) -> list[TrialSpec]:
    """One spec per (utilization point, trial); specs stay grouped by
    utilization in sweep order so the reducer can rebuild the curves."""
    specs: list[TrialSpec] = []
    for utilization in config.utilizations:
        seeds = derive_seeds(
            f"fig7/{config.seed}/{config.n_processors}/{utilization}",
            config.trials,
        )
        for trial, seed in enumerate(seeds):
            specs.append(
                TrialSpec.make(
                    "fig7",
                    len(specs),
                    seed,
                    config=config,
                    interconnects=tuple(interconnects),
                    utilization=utilization,
                    trial=trial,
                )
            )
    return specs


def _fig7_sims(
    spec: TrialSpec,
) -> tuple[list[tuple[str, SoCSimulation]], dict[str, float]]:
    """Build every design's simulation for one (utilization, trial).

    Returns the ``(name, simulation)`` pairs plus the trial's
    simulation-independent base scalars (the optional compositional-
    analysis verdict).
    """
    config: Fig7Config = spec.param("config")
    interconnects: tuple[str, ...] = spec.param("interconnects")
    utilization: float = spec.param("utilization")
    accelerator_id = config.n_processors
    rng = random.Random(spec.seed)
    application, interference, accelerator_tasks = _build_trial_tasksets(
        config, utilization, rng
    )
    combined: dict[int, TaskSet] = {
        client: application[client].merged_with(
            interference.get(client, TaskSet())
        )
        for client in application
    }
    combined[accelerator_id] = accelerator_tasks.merged_with(
        interference.get(accelerator_id, TaskSet())
    )
    scalars: dict[str, float] = {}
    if config.analysis:
        from repro.analysis.model import SystemModel
        from repro.topology import quadtree

        model = SystemModel.build(
            quadtree(config.n_clients),
            combined,
            backend=config.analysis_backend,
        )
        scalars["analysis/schedulable"] = 1.0 if model.schedulable else 0.0
        scalars["analysis/root_bandwidth"] = float(
            model.baseline.root_bandwidth
        )
    pairs: list[tuple[str, SoCSimulation]] = []
    for name in interconnects:
        interconnect = build_interconnect(
            name, config.n_clients, combined, config.factory
        )
        clients: list = [
            ProcessorClient(
                client,
                application[client],
                interference.get(client, TaskSet()),
                rng=random.Random(spec.client_seed(client)),
            )
            for client in application
        ]
        # Paper setup: the HA is throttled to 1/#clients of the
        # memory bandwidth since not all baselines support
        # reservations.  Its streams are not monitored tasks.
        clients.append(
            AcceleratorClient(
                accelerator_id,
                accelerator_tasks.merged_with(
                    interference.get(accelerator_id, TaskSet())
                ),
                bandwidth_cap=1.0 / config.n_clients,
                rng=random.Random(spec.client_seed(accelerator_id)),
            )
        )
        pairs.append(
            (
                name,
                SoCSimulation(
                    clients,
                    interconnect,
                    fast_path=config.fast_path,
                    observability=config.observability,
                ),
            )
        )
    return pairs, scalars


def _fig7_fold(spec: TrialSpec, pairs, results, base_scalars) -> MetricSet:
    """Fold one trial's per-design results into its metric set."""
    config: Fig7Config = spec.param("config")
    accelerator_id = config.n_processors
    scalars = dict(base_scalars)
    tags = {
        "experiment": "fig7",
        "utilization": str(spec.param("utilization")),
        "trial": str(spec.param("trial")),
    }
    for (name, simulation), trial_result in zip(pairs, results):
        # Only processor clients carry monitored tasks; the HA is
        # load.  ProcessorClient marks interference unmonitored.
        monitored_missed = sum(
            missed
            for client_id, (_, missed) in trial_result.job_outcomes.items()
            if client_id != accelerator_id
        )
        scalars[f"{name}/success"] = 1.0 if monitored_missed == 0 else 0.0
        tags[f"{name}/trace"] = trial_result.trace_digest
        if simulation.tracer is not None:
            # Extra scalars are ignored by reduce_fig7 (it only reads
            # the keys it knows) but surface in saved campaign JSON.
            scalars.update(
                simulation.tracer.summary_scalars(prefix=f"{name}/obs/")
            )
    return MetricSet(scalars=scalars, tags=tags)


def run_fig7_trial(spec: TrialSpec) -> MetricSet:
    """One workload draw at one utilization, against every design.

    Emits ``{name}/success`` ∈ {0, 1} per interconnect: 1 when no
    monitored (safety/function) job missed a deadline.
    """
    config: Fig7Config = spec.param("config")
    pairs, base_scalars = _fig7_sims(spec)
    results = [
        simulation.run(config.horizon, drain=config.drain)
        for _, simulation in pairs
    ]
    return _fig7_fold(spec, pairs, results, base_scalars)


def run_fig7_batch(specs: Sequence[TrialSpec]) -> list[MetricSet]:
    """Batch entry point: many trials' simulations in one lock-step run.

    Same contract as :func:`repro.experiments.fig6.run_fig6_batch`:
    every (trial, design) simulation of the chunk goes through
    :func:`repro.sim.batched.run_many` and the folded metric sets are
    bit-identical to :func:`run_fig7_trial`'s.
    """
    from repro.sim.batched import run_many

    built = []
    sims: list[SoCSimulation] = []
    horizons: list[int] = []
    drains: list[int] = []
    for spec in specs:
        config: Fig7Config = spec.param("config")
        pairs, base_scalars = _fig7_sims(spec)
        built.append((spec, pairs, base_scalars))
        for _, simulation in pairs:
            sims.append(simulation)
            horizons.append(config.horizon)
            drains.append(config.drain)
    results = run_many(sims, horizon=horizons, drain=drains)
    folded: list[MetricSet] = []
    at = 0
    for spec, pairs, base_scalars in built:
        folded.append(
            _fig7_fold(
                spec, pairs, results[at : at + len(pairs)], base_scalars
            )
        )
        at += len(pairs)
    return folded


run_fig7_trial.batch = run_fig7_batch


def reduce_fig7(
    config: Fig7Config,
    interconnects: tuple[str, ...],
    outcomes: list[TrialOutcome],
) -> Fig7Result:
    """Fold per-trial successes into per-utilization success ratios."""
    result = Fig7Result(
        config=config,
        success_ratio={name: [] for name in interconnects},
    )
    by_utilization: dict[float, list[TrialOutcome]] = {
        u: [] for u in config.utilizations
    }
    for outcome in outcomes:
        by_utilization[outcome.spec.param("utilization")].append(outcome)
    for utilization in config.utilizations:
        batch = by_utilization[utilization]
        for name in interconnects:
            successes = sum(o.metrics[f"{name}/success"] for o in batch)
            result.success_ratio[name].append(successes / config.trials)
        if config.analysis:
            schedulable = sum(
                o.metrics["analysis/schedulable"]
                for o in batch
                if "analysis/schedulable" in o.metrics
            )
            result.analysis_ratio.append(schedulable / config.trials)
    return result


def run_fig7(
    config: Fig7Config = Fig7Config(),
    interconnects: tuple[str, ...] = INTERCONNECT_NAMES,
    executor: Executor | None = None,
    hooks: ExecutionHooks | None = None,
) -> Fig7Result:
    """Run the success-ratio sweep for one system size."""
    executor = executor or SerialExecutor()
    interconnects = tuple(interconnects)
    specs = build_fig7_specs(config, interconnects)
    outcomes = executor.map(run_fig7_trial, specs, hooks)
    return reduce_fig7(config, interconnects, outcomes)


def format_fig7(result: Fig7Result) -> str:
    """Render the Fig. 7 success-ratio curves as a series table."""
    series = dict(result.success_ratio)
    if result.analysis_ratio:
        series["analysis (BlueScale)"] = result.analysis_ratio
    return format_series(
        "target U",
        [f"{u:.2f}" for u in result.config.utilizations],
        series,
        title=(
            f"Fig 7 — success ratio, {result.config.n_processors}-core system "
            f"(+1 HA), {result.config.trials} trials/point"
        ),
    )


def main() -> None:  # pragma: no cover - CLI convenience
    result = run_fig7(Fig7Config(trials=4, utilizations=(0.3, 0.5, 0.9)))
    print(format_fig7(result))


if __name__ == "__main__":  # pragma: no cover
    main()
