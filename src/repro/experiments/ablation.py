"""Ablations of BlueScale's design choices (DESIGN.md's ablation list).

Each variant removes exactly one mechanism the paper argues for, so a
benchmark can quantify that mechanism's contribution:

* ``round_robin`` — replace Algorithm 1's nested EDF with round-robin
  server selection (budgets still enforced).
* ``fifo_buffers`` — replace the random-access (priority) port buffers
  with plain FIFOs, removing the lower-level priority queue.
* ``naive_interfaces`` — skip the interface-selection algorithm and give
  every port an equal quarter-bandwidth server, ignoring task demands.
* ``binary_fanout`` — rebuild the tree with 2-to-1 SEs instead of the
  quadtree's 4-to-1 (twice the levels between client and memory).
"""

from __future__ import annotations

import random
import statistics
from dataclasses import dataclass

from repro.analysis.interface_selection import SelectionConfig
from repro.analysis.prm import ResourceInterface
from repro.clients.traffic_generator import TrafficGenerator
from repro.core.interconnect import BlueScaleInterconnect
from repro.core.local_scheduler import LocalScheduler
from repro.core.random_access_buffer import RandomAccessBuffer
from repro.errors import ConfigurationError
from repro.runtime import (
    Executor,
    ExecutionHooks,
    MetricSet,
    SerialExecutor,
    TrialOutcome,
    TrialSpec,
)
from repro.soc import SoCSimulation
from repro.tasks.generators import generate_client_tasksets
from repro.tasks.taskset import TaskSet

VARIANTS = ("paper", "round_robin", "fifo_buffers", "naive_interfaces", "binary_fanout")


class RoundRobinLocalScheduler(LocalScheduler):
    """Server selection by rotation instead of EDF (budgets still gate)."""

    def __init__(self, interfaces, now: int = 0) -> None:
        super().__init__(interfaces, now)
        self._cursor = 0

    def select_port(self, buffers: list[RandomAccessBuffer]) -> int | None:
        n = len(self.servers)
        if len(buffers) != n:
            raise ConfigurationError(f"{len(buffers)} buffers for {n} servers")
        for offset in range(n):
            port = (self._cursor + offset) % n
            server, buffer = self.servers[port], buffers[port]
            if buffer.empty:
                continue
            if server.is_idle_interface or server.has_budget:
                self._cursor = (port + 1) % n
                return port
        return None


class FifoPortBuffer(RandomAccessBuffer):
    """Arrival-order buffer: the lower priority queue ablated away."""

    def peek_highest_priority(self):
        if not self._entries:
            return None
        return self._entries[0]

    def fetch_highest_priority(self):
        if not self._entries:
            from repro.errors import CapacityError

            raise CapacityError("fetch from an empty FIFO port buffer")
        return self._entries.pop(0)

    def earliest_deadline(self):
        head = self.peek_highest_priority()
        return None if head is None else head.absolute_deadline


def build_variant(
    variant: str,
    n_clients: int,
    tasksets: dict[int, TaskSet],
    buffer_capacity: int = 2,
    selection_candidates: int = 64,
) -> BlueScaleInterconnect:
    """Build BlueScale with one design choice ablated."""
    if variant not in VARIANTS:
        raise ConfigurationError(
            f"unknown variant {variant!r}; expected one of {VARIANTS}"
        )
    fanout = 2 if variant == "binary_fanout" else 4
    interconnect = BlueScaleInterconnect(
        n_clients, buffer_capacity=buffer_capacity, fanout=fanout
    )
    config = SelectionConfig(max_period_candidates=selection_candidates)
    if variant == "naive_interfaces":
        # Equal quarter-bandwidth servers everywhere: (Pi=4, Theta=1).
        for element in interconnect.elements.values():
            for port in range(element.fanout):
                element.program_port(port, ResourceInterface(4, 1), now=0)
    else:
        interconnect.configure(tasksets, config)
    if variant == "round_robin":
        for element in interconnect.elements.values():
            element.scheduler = RoundRobinLocalScheduler(element.interfaces())
    elif variant == "fifo_buffers":
        for element in interconnect.elements.values():
            element.buffers = [
                FifoPortBuffer(buffer_capacity) for _ in range(element.fanout)
            ]
    return interconnect


@dataclass(frozen=True)
class AblationPoint:
    """Averaged outcome of one variant over the seed batch."""

    variant: str
    mean_miss_ratio: float
    mean_blocking: float
    miss_ratio_std: float
    mean_response: float


def build_ablation_specs(
    variants: tuple[str, ...] = VARIANTS,
    n_clients: int = 16,
    utilization: float = 0.85,
    seeds: tuple[int, ...] = (1, 2, 3),
    horizon: int = 15_000,
    drain: int = 5_000,
) -> list[TrialSpec]:
    """One spec per (variant, seed) pair, grouped by variant."""
    return [
        TrialSpec.make(
            "ablation",
            index,
            f"ablation/{seed}",
            variant=variant,
            n_clients=n_clients,
            utilization=utilization,
            horizon=horizon,
            drain=drain,
        )
        for index, (variant, seed) in enumerate(
            (variant, seed) for variant in variants for seed in seeds
        )
    ]


def run_ablation_trial(spec: TrialSpec) -> MetricSet:
    """Simulate one (variant, seed) draw; pure function of the spec."""
    variant = spec.param("variant")
    n_clients = spec.param("n_clients")
    rng = random.Random(spec.seed)
    tasksets = generate_client_tasksets(
        rng, n_clients, 3, spec.param("utilization")
    )
    interconnect = build_variant(variant, n_clients, tasksets)
    clients = [
        TrafficGenerator(c, ts, rng=random.Random(spec.client_seed(c)))
        for c, ts in tasksets.items()
    ]
    result = SoCSimulation(clients, interconnect).run(
        spec.param("horizon"), drain=spec.param("drain")
    )
    return MetricSet(
        scalars={
            "miss": result.deadline_miss_ratio,
            "blocking": result.mean_blocking,
            "response": result.response_summary().mean,
        },
        tags={"experiment": "ablation", "variant": variant},
    )


def reduce_ablation_variant(
    variant: str, outcomes: list[TrialOutcome]
) -> AblationPoint:
    """Average one variant's per-seed metrics into its point."""
    misses = [o.metrics["miss"] for o in outcomes]
    return AblationPoint(
        variant=variant,
        mean_miss_ratio=statistics.fmean(misses),
        mean_blocking=statistics.fmean(o.metrics["blocking"] for o in outcomes),
        miss_ratio_std=statistics.pstdev(misses) if len(misses) > 1 else 0.0,
        mean_response=statistics.fmean(o.metrics["response"] for o in outcomes),
    )


def evaluate_variant(
    variant: str,
    n_clients: int = 16,
    utilization: float = 0.85,
    seeds: tuple[int, ...] = (1, 2, 3),
    horizon: int = 15_000,
    drain: int = 5_000,
    executor: Executor | None = None,
) -> AblationPoint:
    """Simulate one variant over a seed batch and average the metrics."""
    executor = executor or SerialExecutor()
    specs = build_ablation_specs(
        (variant,), n_clients, utilization, seeds, horizon, drain
    )
    return reduce_ablation_variant(
        variant, executor.map(run_ablation_trial, specs)
    )


@dataclass(frozen=True)
class AlphaPoint:
    """BlueTree behaviour at one blocking factor."""

    alpha: int
    mean_miss_ratio: float
    mean_blocking: float


def run_bluetree_alpha_sweep(
    alphas: tuple[int, ...] = (1, 2, 4, 8),
    n_clients: int = 16,
    utilization: float = 0.85,
    seeds: tuple[int, ...] = (1, 2, 3),
    horizon: int = 12_000,
) -> list[AlphaPoint]:
    """Sweep BlueTree's blocking factor α (paper Sec. 2.2).

    α = 1 is local round-robin; larger α favors the left path harder.
    The sweep quantifies the paper's argument that no static α links
    the arbitration to task demands — some α is least bad on average,
    but every setting stays far from BlueScale's numbers.
    """
    from repro.interconnects.bluetree import BlueTreeInterconnect

    points = []
    for alpha in alphas:
        misses, blockings = [], []
        for seed in seeds:
            rng = random.Random(f"alpha/{seed}")
            tasksets = generate_client_tasksets(rng, n_clients, 3, utilization)
            interconnect = BlueTreeInterconnect(n_clients, alpha=alpha)
            clients = [
                TrafficGenerator(
                    c, ts, rng=random.Random(f"alpha/{seed}/client/{c}")
                )
                for c, ts in tasksets.items()
            ]
            result = SoCSimulation(clients, interconnect).run(
                horizon, drain=5_000
            )
            misses.append(result.deadline_miss_ratio)
            blockings.append(result.mean_blocking)
        points.append(
            AlphaPoint(
                alpha=alpha,
                mean_miss_ratio=statistics.fmean(misses),
                mean_blocking=statistics.fmean(blockings),
            )
        )
    return points


def run_ablation(
    n_clients: int = 16,
    utilization: float = 0.85,
    seeds: tuple[int, ...] = (1, 2, 3),
    horizon: int = 15_000,
    executor: Executor | None = None,
    hooks: ExecutionHooks | None = None,
) -> dict[str, AblationPoint]:
    """Evaluate every variant under identical workloads.

    All (variant, seed) trials go through one executor batch, so a
    parallel executor overlaps work across variants, not just seeds.
    """
    executor = executor or SerialExecutor()
    specs = build_ablation_specs(VARIANTS, n_clients, utilization, seeds, horizon)
    outcomes = executor.map(run_ablation_trial, specs, hooks)
    by_variant: dict[str, list[TrialOutcome]] = {v: [] for v in VARIANTS}
    for outcome in outcomes:
        by_variant[outcome.spec.param("variant")].append(outcome)
    return {
        variant: reduce_ablation_variant(variant, batch)
        for variant, batch in by_variant.items()
    }
