"""Extension experiment — sensitivity to the memory device model.

The paper's analysis (and our Figs. 6–7) works in transaction slots:
the provider services one transaction per slot.  Real DRAM is not flat:
row-buffer hits are fast, conflicts are slow, and interleaving across
clients destroys locality.  This experiment swaps the unit-slot
provider for the banked row-buffer DRAM model under two provisioning
policies:

* **worst-case provisioning** — task demand sized so that even if every
  access pays the row-conflict cost the system stays within capacity
  (how a real-time integrator must provision);
* **average provisioning** — demand sized to the optimistic average
  access cost (hit-dominated), the classic throughput-oriented sizing.

Expected finding: with worst-case provisioning every interconnect keeps
(nearly) all deadlines — the paper's slot abstraction is safe; with
average provisioning the system is effectively over-utilized whenever
locality collapses, and *no* interconnect can save it (scheduling
cannot create bandwidth).
"""

from __future__ import annotations

import random
import statistics
from dataclasses import dataclass

from repro.clients.traffic_generator import TrafficGenerator
from repro.errors import ConfigurationError
from repro.experiments.factory import (
    DEFAULT_FACTORY_CONFIG,
    FactoryConfig,
    build_interconnect,
)
from repro.memory.controller import ArbitrationPolicy, MemoryController
from repro.memory.dram import DramDevice, DramTiming, FixedLatencyDevice
from repro.runtime import (
    Executor,
    ExecutionHooks,
    MetricSet,
    SerialExecutor,
    TrialOutcome,
    TrialSpec,
)
from repro.soc import SoCSimulation
from repro.tasks.generators import generate_client_tasksets

#: experiment configurations: (label, device, demand divisor)
_DRAM_SCALE = 4  # row-miss cost in slots; hits cost half, conflicts 1.25x


def _timing() -> DramTiming:
    return DramTiming(
        row_hit_cycles=_DRAM_SCALE // 2,
        row_miss_cycles=_DRAM_SCALE,
        row_conflict_cycles=_DRAM_SCALE + _DRAM_SCALE // 4,
    )


def _configurations() -> list[tuple[str, str, float]]:
    timing = _timing()
    average_cost = 0.6 * timing.row_hit_cycles + 0.4 * timing.row_miss_cycles
    return [
        ("unit-slot", "unit", 1.0),
        ("dram/worst-case", "dram", float(timing.row_conflict_cycles)),
        ("dram/average", "dram", average_cost),
    ]


@dataclass(frozen=True)
class DeviceOutcome:
    """Metrics of one (interconnect, configuration) pair."""

    interconnect: str
    configuration: str
    miss_ratio: float
    mean_response: float
    row_hit_ratio: float


def _make_controller(kind: str) -> MemoryController:
    if kind == "unit":
        return MemoryController(FixedLatencyDevice(1), queue_capacity=4)
    if kind == "dram":
        return MemoryController(
            DramDevice(timing=_timing()),
            queue_capacity=4,
            policy=ArbitrationPolicy.FR_FCFS,
        )
    raise ConfigurationError(f"unknown device kind {kind!r}")


def build_dram_specs(
    n_clients: int = 16,
    utilization: float = 0.7,
    seeds: tuple[int, ...] = (1, 2, 3),
    horizon: int = 15_000,
    interconnects: tuple[str, ...] = ("BlueScale", "BlueTree", "AXI-IC^RT"),
    factory: FactoryConfig = DEFAULT_FACTORY_CONFIG,
) -> list[TrialSpec]:
    """One spec per (configuration, interconnect, seed), grouped by
    configuration then interconnect in the reporting order."""
    specs: list[TrialSpec] = []
    for label, kind, divisor in _configurations():
        for name in interconnects:
            for seed in seeds:
                specs.append(
                    TrialSpec.make(
                        "dram_sensitivity",
                        len(specs),
                        f"dram/{seed}",
                        configuration=label,
                        kind=kind,
                        divisor=divisor,
                        interconnect=name,
                        n_clients=n_clients,
                        utilization=utilization,
                        horizon=horizon,
                        factory=factory,
                    )
                )
    return specs


def run_dram_trial(spec: TrialSpec) -> MetricSet:
    """One (configuration, interconnect, seed) simulation."""
    n_clients = spec.param("n_clients")
    rng = random.Random(spec.seed)
    tasksets = generate_client_tasksets(
        rng, n_clients, 3, spec.param("utilization") / spec.param("divisor")
    )
    controller = _make_controller(spec.param("kind"))
    interconnect = build_interconnect(
        spec.param("interconnect"), n_clients, tasksets, spec.param("factory")
    )
    clients = [
        TrafficGenerator(c, ts, rng=random.Random(spec.client_seed(c)))
        for c, ts in tasksets.items()
    ]
    result = SoCSimulation(clients, interconnect, controller=controller).run(
        spec.param("horizon"), drain=6_000
    )
    return MetricSet(
        scalars={
            "miss": result.deadline_miss_ratio,
            "response": result.response_summary().mean,
            "row_hits": getattr(controller.device, "row_hit_ratio", 1.0),
        },
        tags={
            "experiment": "dram_sensitivity",
            "configuration": spec.param("configuration"),
            "interconnect": spec.param("interconnect"),
        },
    )


def reduce_dram_sensitivity(
    outcomes: list[TrialOutcome],
) -> list[DeviceOutcome]:
    """Average per-seed metrics into one outcome per (config, design)."""
    grouped: dict[tuple[str, str], list[TrialOutcome]] = {}
    for outcome in outcomes:
        key = (
            outcome.spec.param("configuration"),
            outcome.spec.param("interconnect"),
        )
        grouped.setdefault(key, []).append(outcome)
    return [
        DeviceOutcome(
            interconnect=name,
            configuration=label,
            miss_ratio=statistics.fmean(o.metrics["miss"] for o in batch),
            mean_response=statistics.fmean(
                o.metrics["response"] for o in batch
            ),
            row_hit_ratio=statistics.fmean(
                o.metrics["row_hits"] for o in batch
            ),
        )
        for (label, name), batch in grouped.items()
    ]


def run_dram_sensitivity(
    n_clients: int = 16,
    utilization: float = 0.7,
    seeds: tuple[int, ...] = (1, 2, 3),
    horizon: int = 15_000,
    interconnects: tuple[str, ...] = ("BlueScale", "BlueTree", "AXI-IC^RT"),
    factory: FactoryConfig = DEFAULT_FACTORY_CONFIG,
    executor: Executor | None = None,
    hooks: ExecutionHooks | None = None,
) -> list[DeviceOutcome]:
    """Compare provisioning policies on a banked-DRAM provider."""
    executor = executor or SerialExecutor()
    specs = build_dram_specs(
        n_clients, utilization, seeds, horizon, tuple(interconnects), factory
    )
    return reduce_dram_sensitivity(executor.map(run_dram_trial, specs, hooks))


def format_dram_sensitivity(outcomes: list[DeviceOutcome]) -> str:
    """Render the provisioning-vs-device outcome table."""
    from repro.experiments.reporting import format_table

    rows = [
        [
            o.configuration,
            o.interconnect,
            f"{100 * o.miss_ratio:.2f}",
            f"{o.mean_response:.1f}",
            f"{100 * o.row_hit_ratio:.0f}%",
        ]
        for o in outcomes
    ]
    return format_table(
        ["provisioning", "interconnect", "miss ratio (%)", "mean response", "row hits"],
        rows,
        title="Provider-model sensitivity (unit-slot vs banked DRAM)",
    )
