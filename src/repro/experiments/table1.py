"""Experiment T1 — Table 1: hardware overhead at 16 clients.

Reproduces the paper's Table 1: LUTs, registers, DSPs, RAM and power of
every evaluated interconnect (plus the MicroBlaze and RISC-V yardsticks)
at a 16-client configuration, from the structural hardware cost model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.cost_model import (
    axi_icrt_cost,
    bluescale_cost,
    bluetree_cost,
    bluetree_smooth_cost,
    gsmtree_cost,
    microblaze_cost,
    riscv_cost,
)
from repro.hardware.primitives import HardwareReport
from repro.experiments.reporting import format_table

#: the paper's published Table 1, for side-by-side comparison
PAPER_TABLE1: dict[str, tuple[int, int, int, int, int]] = {
    "AXI-IC^RT": (3744, 3451, 0, 0, 46),
    "BlueTree": (1683, 2901, 0, 0, 27),
    "BlueTree-Smooth": (2349, 3455, 0, 0, 41),
    "GSMTree": (2443, 3115, 0, 8, 59),
    "MicroBlaze": (4993, 4295, 6, 256, 369),
    "RISC-V": (7433, 16544, 21, 512, 583),
    "BlueScale": (2959, 3312, 0, 10, 67),
}

ROW_ORDER = (
    "AXI-IC^RT",
    "BlueTree",
    "BlueTree-Smooth",
    "GSMTree",
    "MicroBlaze",
    "RISC-V",
    "BlueScale",
)


@dataclass(frozen=True)
class Table1Row:
    design: str
    report: HardwareReport
    paper: tuple[int, int, int, int, int]


def run_table1(n_clients: int = 16) -> list[Table1Row]:
    """Compute every Table 1 row at ``n_clients``."""
    reports = {
        "AXI-IC^RT": axi_icrt_cost(n_clients),
        "BlueTree": bluetree_cost(n_clients),
        "BlueTree-Smooth": bluetree_smooth_cost(n_clients),
        "GSMTree": gsmtree_cost(n_clients),
        "MicroBlaze": microblaze_cost(),
        "RISC-V": riscv_cost(),
        "BlueScale": bluescale_cost(n_clients),
    }
    return [
        Table1Row(design=name, report=reports[name], paper=PAPER_TABLE1[name])
        for name in ROW_ORDER
    ]


def format_table1(rows: list[Table1Row]) -> str:
    """Render the measured-vs-paper Table 1."""
    table_rows = []
    for row in rows:
        r, p = row.report, row.paper
        table_rows.append(
            [
                row.design,
                r.luts,
                r.registers,
                r.dsps,
                r.ram_kb,
                round(r.power_mw),
                f"{p[0]}/{p[1]}/{p[2]}/{p[3]}/{p[4]}",
            ]
        )
    return format_table(
        ["Design", "LUTs", "Registers", "DSPs", "RAM(KB)", "Power(mW)",
         "paper(L/R/D/RAM/P)"],
        table_rows,
        title="Table 1 — hardware overhead (16 clients)",
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(format_table1(run_table1()))


if __name__ == "__main__":  # pragma: no cover
    main()
