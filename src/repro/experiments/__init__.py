"""Experiment harness: one module per paper table/figure.

* :mod:`repro.experiments.table1` — Table 1 (hardware overhead).
* :mod:`repro.experiments.fig5` — Fig. 5 (hardware scalability).
* :mod:`repro.experiments.fig6` — Fig. 6 (interconnect-level real-time
  performance with synthetic workloads).
* :mod:`repro.experiments.fig7` — Fig. 7 (automotive case study).
"""

from repro.experiments.factory import (
    DEFAULT_FACTORY_CONFIG,
    INTERCONNECT_NAMES,
    FactoryConfig,
    build_interconnect,
)
from repro.experiments.table1 import PAPER_TABLE1, Table1Row, format_table1, run_table1
from repro.experiments.fig5 import Fig5Result, format_fig5, run_fig5
from repro.experiments.fig6 import (
    Fig6Config,
    Fig6Result,
    InterconnectMetrics,
    build_fig6_specs,
    format_fig6,
    reduce_fig6,
    run_fig6,
    run_fig6_trial,
)
from repro.experiments.fig7 import (
    Fig7Config,
    Fig7Result,
    build_fig7_specs,
    format_fig7,
    reduce_fig7,
    run_fig7,
    run_fig7_trial,
)
from repro.experiments.ablation import (
    VARIANTS,
    AlphaPoint,
    build_variant,
    evaluate_variant,
    run_ablation,
    run_bluetree_alpha_sweep,
)
from repro.experiments.campaign import (
    ExperimentSpec,
    compare_campaigns,
    default_specs,
    load_manifest,
    run_campaign,
)
from repro.experiments.dram_sensitivity import (
    format_dram_sensitivity,
    run_dram_sensitivity,
)
from repro.experiments.fairness import (
    FairnessOutcome,
    format_fairness,
    jain_index,
    run_fairness,
)
from repro.experiments.persistence import load_json, save_csv, save_json
from repro.experiments.scalability_sweep import (
    ScalabilityResult,
    format_scalability,
    run_scalability_sweep,
)
from repro.experiments.update_latency import (
    format_update_latency,
    measure_update_cost,
    run_update_latency,
)
from repro.experiments.reporting import (
    format_bar_chart,
    format_curves,
    format_series,
    format_supply_demand,
    format_table,
)

__all__ = [
    "DEFAULT_FACTORY_CONFIG",
    "INTERCONNECT_NAMES",
    "FactoryConfig",
    "build_interconnect",
    "PAPER_TABLE1",
    "Table1Row",
    "format_table1",
    "run_table1",
    "Fig5Result",
    "format_fig5",
    "run_fig5",
    "Fig6Config",
    "Fig6Result",
    "InterconnectMetrics",
    "build_fig6_specs",
    "format_fig6",
    "reduce_fig6",
    "run_fig6",
    "run_fig6_trial",
    "Fig7Config",
    "Fig7Result",
    "build_fig7_specs",
    "format_fig7",
    "reduce_fig7",
    "run_fig7",
    "run_fig7_trial",
    "format_series",
    "format_table",
    "format_bar_chart",
    "format_curves",
    "format_supply_demand",
    "VARIANTS",
    "build_variant",
    "evaluate_variant",
    "run_ablation",
    "AlphaPoint",
    "run_bluetree_alpha_sweep",
    "ExperimentSpec",
    "compare_campaigns",
    "default_specs",
    "load_manifest",
    "run_campaign",
    "format_dram_sensitivity",
    "run_dram_sensitivity",
    "FairnessOutcome",
    "format_fairness",
    "jain_index",
    "run_fairness",
    "load_json",
    "save_csv",
    "save_json",
    "ScalabilityResult",
    "format_scalability",
    "run_scalability_sweep",
    "format_update_latency",
    "measure_update_cost",
    "run_update_latency",
]
