"""Experiment CH — online workload churn under three admission policies.

Every trial draws one base workload plus a set of *pending* clients and
replays the same deterministic :class:`~repro.scenarios.plan.ScenarioPlan`
(joins, a rate change, a mode switch, a leave) against three ways of
running the same SoC:

* ``BlueScale`` — the paper's answer: every transition runs through an
  :class:`~repro.analysis.session.AdmissionSession` (O(log n)
  path-local re-selection over the shared
  :class:`~repro.analysis.cache.AnalysisCache`), and only the SE ports
  whose (Π, Θ) interface actually changed are reprogrammed, at the
  event cycle.  Each committed transition emits a
  :class:`~repro.scenarios.transient.TransientBound`; after the run the
  job ledgers are checked against those windows — **no monitored job
  may miss its deadline during reconfiguration** (``repro churn
  --verify`` exits 1 otherwise).
* ``AXI-dynamic`` — dynamic bandwidth regulation in the style of
  Agrawal et al. (PAPERS.md): every transition is accepted and answered
  by recomputing *all* per-client budgets
  (:func:`~repro.experiments.factory.axi_budgets`) — the centralized
  design's O(n) re-budget under churn.
* ``AXI-static`` — regulation programmed once for the base workload and
  never touched (Sullivan-style static reservation): churn rides on
  whatever headroom the initial budgets left.

Reported per policy: the victims' (untouched clients') miss ratio, the
churners' miss ratio, how many transitions were applied/rejected, and
the deterministic *reconfiguration work* — SE ports reprogrammed for
BlueScale (O(log n) per event) vs. budgets recomputed for the dynamic
regulator (n per event).  Wall-clock re-selection latency is
deliberately **not** a trial metric (trials must be bit-identical
across executors and backends); ``benchmarks/bench_scenarios.py``
measures it and gates the warm-cache incremental path ≥5x over
from-scratch composition.

Scenario-bearing simulations are ineligible for the SoA batched backend
(the request schedule is not static), so trials transparently take the
scalar engine on either ``--sim-backend`` — the report is identical on
both, which CI checks by diffing digests.
"""

from __future__ import annotations

import hashlib
import random
import statistics
from dataclasses import dataclass, field

from repro.analysis.cache import AnalysisCache
from repro.analysis.interface_selection import SelectionConfig
from repro.analysis.model import SystemModel
from repro.clients.traffic_generator import TrafficGenerator
from repro.core.interconnect import BlueScaleInterconnect
from repro.errors import ConfigurationError
from repro.experiments.factory import (
    DEFAULT_FACTORY_CONFIG,
    FactoryConfig,
    axi_budgets,
    build_interconnect,
)
from repro.experiments.reporting import format_table
from repro.faults.verify import victim_miss_from_outcomes
from repro.runtime import (
    Executor,
    ExecutionHooks,
    MetricSet,
    SerialExecutor,
    TrialOutcome,
    TrialSpec,
    derive_seeds,
)
from repro.scenarios.driver import ScenarioDriver
from repro.scenarios.plan import ScenarioEvent, ScenarioKind, ScenarioPlan, rate_scaled
from repro.scenarios.transient import (
    TransientBound,
    compute_transient_bound,
    changed_ports,
    verify_transients,
)
from repro.soc import SoCSimulation
from repro.tasks.generators import generate_client_tasksets
from repro.tasks.taskset import TaskSet

#: the three admission policies every trial compares
CHURN_POLICIES = ("BlueScale", "AXI-dynamic", "AXI-static")


@dataclass(frozen=True)
class ChurnConfig:
    """Scale and churn timeline of the campaign."""

    n_clients: int = 8
    trials: int = 3
    horizon: int = 6_000
    drain: int = 3_000
    #: low enough that the base workload plus admitted churn stays
    #: schedulable — misses are then reconfiguration artifacts, which
    #: is exactly what the transient verification hunts
    utilization_low: float = 0.30
    utilization_high: float = 0.45
    tasks_per_client: int = 2
    period_min: int = 100
    period_max: int = 1_200
    #: how many of the highest-numbered clients start idle and join
    #: mid-run (their drawn task sets become the join payloads)
    joiners: int = 2
    #: the client that changes rate and later leaves
    churner: int = 1
    seed: int = 2026
    factory: FactoryConfig = DEFAULT_FACTORY_CONFIG
    fast_path: bool = True

    def __post_init__(self) -> None:
        if not 0 < self.utilization_low <= self.utilization_high:
            raise ConfigurationError("invalid utilization range")
        if self.trials < 1 or self.horizon < 20:
            raise ConfigurationError("trials must be >= 1, horizon >= 20")
        if not 1 <= self.joiners <= self.n_clients - 2:
            raise ConfigurationError(
                f"joiners must lie in [1, n_clients - 2], got {self.joiners}"
            )
        if not 0 <= self.churner < self.n_clients - self.joiners:
            raise ConfigurationError(
                f"churner {self.churner} must be an initially-active client"
            )

    @property
    def joiner_ids(self) -> tuple[int, ...]:
        return tuple(
            range(self.n_clients - self.joiners, self.n_clients)
        )


def build_churn_specs(config: ChurnConfig = ChurnConfig()) -> list[TrialSpec]:
    seeds = derive_seeds(
        f"churn/{config.seed}/{config.n_clients}", config.trials
    )
    return [
        TrialSpec.make("churn", trial, seed, config=config)
        for trial, seed in enumerate(seeds)
    ]


def _churn_workload(spec: TrialSpec):
    """Draw one trial's workload and derive its scenario plan.

    Returns ``(base_tasksets, plan)``: the initially-active clients'
    sets, and the deterministic event timeline (joiners arriving, the
    churner changing rate, a mode switch, the churner leaving).  All
    randomness comes from the trial RNG, so the same spec yields the
    same plan on any executor or backend.
    """
    config: ChurnConfig = spec.param("config")
    trial_rng = random.Random(spec.seed)
    utilization = trial_rng.uniform(
        config.utilization_low, config.utilization_high
    )
    drawn = generate_client_tasksets(
        trial_rng,
        config.n_clients,
        config.tasks_per_client,
        utilization,
        period_min=config.period_min,
        period_max=config.period_max,
    )
    joiners = config.joiner_ids
    rate_factor = trial_rng.choice((0.8, 1.25, 1.5))
    base = {
        client: taskset
        for client, taskset in drawn.items()
        if client not in joiners
    }
    horizon = config.horizon
    events = [
        ScenarioEvent(
            kind=ScenarioKind.CLIENT_JOIN,
            cycle=horizon // 6 + index * max(1, horizon // 12),
            client_id=joiner,
            tasks=tuple(drawn[joiner]),
        )
        for index, joiner in enumerate(joiners)
    ]
    events.append(
        ScenarioEvent(
            kind=ScenarioKind.RATE_CHANGE,
            cycle=(9 * horizon) // 20,
            client_id=config.churner,
            factor=rate_factor,
        )
    )
    # The first joiner later switches to a lighter operating mode
    # (same tasks, periods stretched 1.5x).
    events.append(
        ScenarioEvent(
            kind=ScenarioKind.MODE_SWITCH,
            cycle=(5 * horizon) // 8,
            client_id=joiners[0],
            tasks=tuple(rate_scaled(drawn[joiners[0]], 1.5)),
        )
    )
    events.append(
        ScenarioEvent(
            kind=ScenarioKind.CLIENT_LEAVE,
            cycle=(4 * horizon) // 5,
            client_id=config.churner,
        )
    )
    return base, ScenarioPlan(tuple(events))


class _BlueScaleGate:
    """Admission gate: session re-selection + path-local SE reprogramming."""

    def __init__(self, session, interconnect) -> None:  # noqa: ANN001
        self.session = session
        self.interconnect = interconnect
        self.transients: list[TransientBound] = []
        self.ports_reprogrammed = 0

    def __call__(self, index, event, cycle, proposed) -> bool:  # noqa: ANN001
        session = self.session
        old_tasksets = session.tasksets
        old_composition = session.composition
        if event.kind is ScenarioKind.CLIENT_JOIN:
            decision = session.admit(event.client_id, event.assigned_tasks())
        elif event.kind is ScenarioKind.CLIENT_LEAVE:
            decision = session.evict(event.client_id)
        else:
            new_tasks = proposed[event.client_id]
            decision = (
                session.retask(event.client_id, new_tasks)
                if len(new_tasks) > 0
                else session.evict(event.client_id)
            )
        if not decision.committed:
            return False
        # Reprogram exactly the SE ports whose interface changed — the
        # path-local footprint the paper's scalability argument counts.
        changed = changed_ports(old_composition, decision.composition)
        for node, port in changed:
            self.interconnect.elements[node].program_port(
                port,
                decision.composition.interface_for(node, port),
                now=cycle,
            )
        self.interconnect.composition = decision.composition
        self.ports_reprogrammed += len(changed)
        self.transients.append(
            compute_transient_bound(
                index,
                event,
                cycle,
                old_tasksets,
                old_composition,
                decision.composition,
            )
        )
        return True


class _AxiDynamicGate:
    """Accept everything; recompute every client's budget (O(n))."""

    def __init__(self, interconnect, config: ChurnConfig) -> None:  # noqa: ANN001
        self.interconnect = interconnect
        self.config = config
        self.budgets_recomputed = 0

    def __call__(self, index, event, cycle, proposed) -> bool:  # noqa: ANN001
        factory = self.config.factory
        budgets = axi_budgets(
            self.config.n_clients,
            proposed,
            factory.axi_window,
            factory.axi_margin,
        )
        self.interconnect.configure_regulation(budgets, factory.axi_window)
        self.budgets_recomputed += self.config.n_clients
        return True


def _make_clients(
    spec: TrialSpec, config: ChurnConfig, base: dict[int, TaskSet]
) -> list[TrafficGenerator]:
    """One generator per fabric port — pending joiners start idle."""
    return [
        TrafficGenerator(
            client_id,
            base.get(client_id, TaskSet()),
            rng=random.Random(spec.client_seed(client_id)),
        )
        for client_id in range(config.n_clients)
    ]


def run_churn_trial(spec: TrialSpec) -> MetricSet:
    """One workload draw through all three policies, scalar engine.

    Pure function of the spec.  No ``.batch`` attribute on purpose:
    scenario-bearing sims are SoA-ineligible, so a batch entry point
    would only re-route every trial through the per-trial fallback.
    """
    config: ChurnConfig = spec.param("config")
    base, plan = _churn_workload(spec)
    victims = frozenset(range(config.n_clients)) - plan.clients()
    scalars: dict[str, float] = {}
    tags = {"experiment": "churn", "trial": str(spec.index)}

    for policy in CHURN_POLICIES:
        gate = None
        if policy == "BlueScale":
            interconnect = BlueScaleInterconnect(
                config.n_clients,
                buffer_capacity=config.factory.bluescale_buffer_capacity,
            )
            model = SystemModel.build(
                interconnect.topology,
                base,
                config=SelectionConfig(
                    max_period_candidates=config.factory.selection_candidates
                ),
                cache=AnalysisCache(),
                label=f"churn trial {spec.index}",
            )
            interconnect.configure_from_model(model)
            gate = _BlueScaleGate(model.session(), interconnect)
        else:
            interconnect = build_interconnect(
                "AXI-IC^RT", config.n_clients, base, config.factory
            )
            if policy == "AXI-dynamic":
                gate = _AxiDynamicGate(interconnect, config)
        driver = ScenarioDriver(plan, admission=gate)
        sim = SoCSimulation(
            _make_clients(spec, config, base),
            interconnect,
            fast_path=config.fast_path,
            scenario=driver,
        )
        result = sim.run(config.horizon, drain=config.drain)
        counters = result.scenario_counters
        scalars[f"{policy}/victim_miss"] = victim_miss_from_outcomes(
            result.job_outcomes, victims
        )
        scalars[f"{policy}/churner_miss"] = victim_miss_from_outcomes(
            result.job_outcomes, plan.clients()
        )
        scalars[f"{policy}/events_applied"] = float(counters["events_applied"])
        scalars[f"{policy}/events_rejected"] = float(
            counters["events_rejected"]
        )
        if policy == "BlueScale":
            scalars[f"{policy}/reconfig_work"] = float(
                gate.ports_reprogrammed
            )
            report = verify_transients(
                sim.clients, gate.transients, config.horizon
            )
            scalars[f"{policy}/transient_events"] = float(len(report.bounds))
            scalars[f"{policy}/transient_window_mean"] = report.mean_window
            scalars[f"{policy}/transient_window_max"] = float(
                report.max_window
            )
            scalars[f"{policy}/transient_violations"] = float(
                len(report.violations)
            )
            scalars[f"{policy}/jobs_in_transit"] = float(
                report.jobs_in_transit
            )
        elif policy == "AXI-dynamic":
            scalars[f"{policy}/reconfig_work"] = float(
                gate.budgets_recomputed
            )
        else:
            scalars[f"{policy}/reconfig_work"] = 0.0
        # Digests certify bit-identical campaigns across executors and
        # --sim-backend values (the CI scenarios job diffs reports).
        tags[f"{policy}/trace"] = result.trace_digest
    return MetricSet(scalars=scalars, tags=tags)


@dataclass
class PolicyChurn:
    """Per-policy measurements across trials."""

    name: str
    victim_miss: list[float] = field(default_factory=list)
    churner_miss: list[float] = field(default_factory=list)
    events_applied: int = 0
    events_rejected: int = 0
    reconfig_work: int = 0
    transient_windows_max: int = 0
    transient_window_means: list[float] = field(default_factory=list)
    transient_violations: int = 0
    jobs_in_transit: int = 0

    @property
    def mean_victim_miss(self) -> float:
        return statistics.fmean(self.victim_miss) if self.victim_miss else 0.0

    @property
    def mean_churner_miss(self) -> float:
        return (
            statistics.fmean(self.churner_miss) if self.churner_miss else 0.0
        )

    @property
    def work_per_event(self) -> float:
        if not self.events_applied:
            return 0.0
        return self.reconfig_work / self.events_applied


@dataclass
class ChurnResult:
    config: ChurnConfig
    metrics: dict[str, PolicyChurn]
    #: sha256 over every per-trial trace digest — one line to diff
    #: between backends/executors
    campaign_digest: str = ""
    failed_trials: int = 0

    @property
    def total_transient_violations(self) -> int:
        bluescale = self.metrics.get("BlueScale")
        return bluescale.transient_violations if bluescale else 0

    def metric_set(self) -> MetricSet:
        scalars: dict[str, float] = {}
        for name, m in self.metrics.items():
            scalars[f"{name}/victim_miss"] = m.mean_victim_miss
            scalars[f"{name}/churner_miss"] = m.mean_churner_miss
            scalars[f"{name}/events_applied"] = float(m.events_applied)
            scalars[f"{name}/events_rejected"] = float(m.events_rejected)
            scalars[f"{name}/reconfig_work_per_event"] = m.work_per_event
        scalars["transient_violations"] = float(
            self.total_transient_violations
        )
        return MetricSet(
            scalars=scalars,
            tags={
                "experiment": "churn",
                "n_clients": str(self.config.n_clients),
                "campaign_digest": self.campaign_digest,
            },
        )


def reduce_churn(
    config: ChurnConfig, outcomes: list[TrialOutcome]
) -> ChurnResult:
    """Fold trial metric sets; failed trials are counted, not folded."""
    metrics = {name: PolicyChurn(name) for name in CHURN_POLICIES}
    digest = hashlib.sha256()
    failed = 0
    for outcome in outcomes:
        if outcome.failed:
            failed += 1
            continue
        for name in CHURN_POLICIES:
            m = metrics[name]
            m.victim_miss.append(outcome.metrics[f"{name}/victim_miss"])
            m.churner_miss.append(outcome.metrics[f"{name}/churner_miss"])
            m.events_applied += int(outcome.metrics[f"{name}/events_applied"])
            m.events_rejected += int(
                outcome.metrics[f"{name}/events_rejected"]
            )
            m.reconfig_work += int(outcome.metrics[f"{name}/reconfig_work"])
            if f"{name}/transient_violations" in outcome.metrics:
                m.transient_violations += int(
                    outcome.metrics[f"{name}/transient_violations"]
                )
                m.jobs_in_transit += int(
                    outcome.metrics[f"{name}/jobs_in_transit"]
                )
                m.transient_window_means.append(
                    outcome.metrics[f"{name}/transient_window_mean"]
                )
                m.transient_windows_max = max(
                    m.transient_windows_max,
                    int(outcome.metrics[f"{name}/transient_window_max"]),
                )
            digest.update(
                outcome.metrics.tags.get(f"{name}/trace", "").encode()
            )
    return ChurnResult(
        config=config,
        metrics=metrics,
        campaign_digest=digest.hexdigest(),
        failed_trials=failed,
    )


def run_churn(
    config: ChurnConfig = ChurnConfig(),
    executor: Executor | None = None,
    hooks: ExecutionHooks | None = None,
) -> ChurnResult:
    """Run the churn campaign through any executor."""
    executor = executor or SerialExecutor()
    specs = build_churn_specs(config)
    outcomes = executor.map(run_churn_trial, specs, hooks)
    return reduce_churn(config, outcomes)


def format_churn(result: ChurnResult) -> str:
    """Render the per-policy churn report."""
    rows = []
    for name, m in result.metrics.items():
        if name == "BlueScale":
            transient = (
                f"{m.transient_violations} misses in "
                f"{m.jobs_in_transit} transit jobs, "
                f"max window {m.transient_windows_max}"
            )
        else:
            transient = "-"
        rows.append(
            [
                name,
                f"{100 * m.mean_victim_miss:.2f}",
                f"{100 * m.mean_churner_miss:.2f}",
                f"{m.events_applied}/{m.events_applied + m.events_rejected}",
                f"{m.work_per_event:.1f}",
                transient,
            ]
        )
    config = result.config
    table = format_table(
        [
            "Policy",
            "Victim miss (%)",
            "Churner miss (%)",
            "Events applied",
            "Reconfig work/event",
            "Transient verification",
        ],
        rows,
        title=(
            f"Churn — {config.n_clients} clients, {config.joiners} "
            f"joiner(s), client {config.churner} rate-change+leave, "
            f"{config.trials} trials"
        ),
    )
    lines = [table, f"campaign digest: {result.campaign_digest[:16]}"]
    if result.failed_trials:
        lines.append(f"WARNING: {result.failed_trials} trial(s) failed")
    if result.total_transient_violations:
        lines.append(
            f"FAIL: {result.total_transient_violations} monitored deadline "
            "miss(es) inside a reconfiguration transient"
        )
    else:
        lines.append(
            "All mode transitions transient-safe: no monitored deadline "
            "missed during reconfiguration."
        )
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI convenience
    result = run_churn()
    print(format_churn(result))


if __name__ == "__main__":  # pragma: no cover
    main()
