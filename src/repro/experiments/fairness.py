"""Extension experiment — per-client fairness of the interconnects.

Averages hide victims: an interconnect can post a decent mean while
starving one client (BlueTree's deepest-path clients are the classic
case).  This experiment measures, per design:

* **Jain's fairness index** over per-client mean response times
  (1.0 = perfectly even; 1/n = one client hogs everything);
* **worst/best client ratio** of mean response;
* **miss concentration** — the share of all deadline misses carried by
  the single worst client.
"""

from __future__ import annotations

import random
import statistics
from collections import defaultdict
from dataclasses import dataclass

from repro.clients.traffic_generator import TrafficGenerator
from repro.errors import ConfigurationError
from repro.experiments.factory import (
    DEFAULT_FACTORY_CONFIG,
    INTERCONNECT_NAMES,
    FactoryConfig,
    build_interconnect,
)
from repro.soc import SoCSimulation
from repro.tasks.generators import generate_client_tasksets


def jain_index(values: list[float]) -> float:
    """Jain's fairness index: (Σx)² / (n·Σx²); 1.0 is perfectly fair."""
    if not values:
        raise ConfigurationError("Jain's index of an empty sample")
    if all(v == 0 for v in values):
        return 1.0
    square_of_sum = sum(values) ** 2
    sum_of_squares = sum(v * v for v in values)
    return square_of_sum / (len(values) * sum_of_squares)


@dataclass(frozen=True)
class FairnessOutcome:
    """Fairness metrics of one interconnect."""

    interconnect: str
    jain_response: float
    worst_best_ratio: float
    miss_concentration: float


def run_fairness(
    n_clients: int = 16,
    utilization: float = 0.8,
    seeds: tuple[int, ...] = (1, 2, 3),
    horizon: int = 15_000,
    interconnects: tuple[str, ...] = INTERCONNECT_NAMES,
    factory: FactoryConfig = DEFAULT_FACTORY_CONFIG,
) -> list[FairnessOutcome]:
    """Measure fairness metrics per design over a seed batch."""
    outcomes = []
    for name in interconnects:
        jain_values, ratios, concentrations = [], [], []
        for seed in seeds:
            rng = random.Random(f"fairness/{seed}")
            tasksets = generate_client_tasksets(rng, n_clients, 3, utilization)
            interconnect = build_interconnect(name, n_clients, tasksets, factory)
            clients = [TrafficGenerator(c, ts) for c, ts in tasksets.items()]
            SoCSimulation(clients, interconnect).run(horizon, drain=6_000)
            responses: dict[int, list[int]] = defaultdict(list)
            misses: dict[int, int] = defaultdict(int)
            total_misses = 0
            for client in clients:
                for job in client.jobs:
                    if job.finished and job.dropped == 0:
                        responses[client.client_id].append(
                            job.last_completion - job.release
                        )
                    if job.deadline <= horizon and not job.met_deadline:
                        misses[client.client_id] += 1
                        total_misses += 1
            means = [
                statistics.fmean(values)
                for values in responses.values()
                if values
            ]
            if len(means) < 2:
                continue
            jain_values.append(jain_index(means))
            ratios.append(max(means) / min(means))
            concentrations.append(
                max(misses.values()) / total_misses if total_misses else 0.0
            )
        outcomes.append(
            FairnessOutcome(
                interconnect=name,
                jain_response=statistics.fmean(jain_values),
                worst_best_ratio=statistics.fmean(ratios),
                miss_concentration=statistics.fmean(concentrations),
            )
        )
    return outcomes


def format_fairness(outcomes: list[FairnessOutcome]) -> str:
    """Render the fairness comparison table."""
    from repro.experiments.reporting import format_table

    rows = [
        [
            o.interconnect,
            f"{o.jain_response:.3f}",
            f"{o.worst_best_ratio:.1f}x",
            f"{100 * o.miss_concentration:.0f}%",
        ]
        for o in outcomes
    ]
    return format_table(
        ["interconnect", "Jain index (response)", "worst/best client",
         "miss share of worst client"],
        rows,
        title="Per-client fairness (higher Jain = fairer)",
    )
