"""Extension experiment — per-client fairness of the interconnects.

Averages hide victims: an interconnect can post a decent mean while
starving one client (BlueTree's deepest-path clients are the classic
case).  This experiment measures, per design:

* **Jain's fairness index** over per-client mean response times
  (1.0 = perfectly even; 1/n = one client hogs everything);
* **worst/best client ratio** of mean response;
* **miss concentration** — the share of all deadline misses carried by
  the single worst client.
"""

from __future__ import annotations

import random
import statistics
from collections import defaultdict
from dataclasses import dataclass

from repro.clients.traffic_generator import TrafficGenerator
from repro.errors import ConfigurationError
from repro.experiments.factory import (
    DEFAULT_FACTORY_CONFIG,
    INTERCONNECT_NAMES,
    FactoryConfig,
    build_interconnect,
)
from repro.runtime import (
    Executor,
    ExecutionHooks,
    MetricSet,
    SerialExecutor,
    TrialOutcome,
    TrialSpec,
)
from repro.soc import SoCSimulation
from repro.tasks.generators import generate_client_tasksets


def jain_index(values: list[float]) -> float:
    """Jain's fairness index: (Σx)² / (n·Σx²); 1.0 is perfectly fair."""
    if not values:
        raise ConfigurationError("Jain's index of an empty sample")
    if all(v == 0 for v in values):
        return 1.0
    square_of_sum = sum(values) ** 2
    sum_of_squares = sum(v * v for v in values)
    return square_of_sum / (len(values) * sum_of_squares)


@dataclass(frozen=True)
class FairnessOutcome:
    """Fairness metrics of one interconnect."""

    interconnect: str
    jain_response: float
    worst_best_ratio: float
    miss_concentration: float


def build_fairness_specs(
    n_clients: int = 16,
    utilization: float = 0.8,
    seeds: tuple[int, ...] = (1, 2, 3),
    horizon: int = 15_000,
    interconnects: tuple[str, ...] = INTERCONNECT_NAMES,
    factory: FactoryConfig = DEFAULT_FACTORY_CONFIG,
) -> list[TrialSpec]:
    """One spec per (interconnect, seed), grouped by interconnect."""
    return [
        TrialSpec.make(
            "fairness",
            index,
            f"fairness/{seed}",
            interconnect=name,
            n_clients=n_clients,
            utilization=utilization,
            horizon=horizon,
            factory=factory,
        )
        for index, (name, seed) in enumerate(
            (name, seed) for name in interconnects for seed in seeds
        )
    ]


def run_fairness_trial(spec: TrialSpec) -> MetricSet:
    """One (interconnect, seed) simulation with per-client bookkeeping.

    ``valid`` is 0 when fewer than two clients completed jobs — the
    reducer drops such trials, matching the old inline skip.
    """
    n_clients = spec.param("n_clients")
    horizon = spec.param("horizon")
    rng = random.Random(spec.seed)
    tasksets = generate_client_tasksets(
        rng, n_clients, 3, spec.param("utilization")
    )
    interconnect = build_interconnect(
        spec.param("interconnect"), n_clients, tasksets, spec.param("factory")
    )
    clients = [
        TrafficGenerator(c, ts, rng=random.Random(spec.client_seed(c)))
        for c, ts in tasksets.items()
    ]
    SoCSimulation(clients, interconnect).run(horizon, drain=6_000)
    responses: dict[int, list[int]] = defaultdict(list)
    misses: dict[int, int] = defaultdict(int)
    total_misses = 0
    for client in clients:
        for job in client.jobs:
            if job.finished and job.dropped == 0:
                responses[client.client_id].append(
                    job.last_completion - job.release
                )
            if job.deadline <= horizon and not job.met_deadline:
                misses[client.client_id] += 1
                total_misses += 1
    means = [
        statistics.fmean(values) for values in responses.values() if values
    ]
    tags = {
        "experiment": "fairness",
        "interconnect": spec.param("interconnect"),
    }
    if len(means) < 2:
        return MetricSet(
            scalars={"valid": 0.0, "jain": 0.0, "ratio": 0.0, "concentration": 0.0},
            tags=tags,
        )
    return MetricSet(
        scalars={
            "valid": 1.0,
            "jain": jain_index(means),
            "ratio": max(means) / min(means),
            "concentration": (
                max(misses.values()) / total_misses if total_misses else 0.0
            ),
        },
        tags=tags,
    )


def reduce_fairness(
    interconnects: tuple[str, ...], outcomes: list[TrialOutcome]
) -> list[FairnessOutcome]:
    """Average valid trials into one outcome per design."""
    grouped: dict[str, list[TrialOutcome]] = {name: [] for name in interconnects}
    for outcome in outcomes:
        if outcome.metrics["valid"]:
            grouped[outcome.spec.param("interconnect")].append(outcome)
    return [
        FairnessOutcome(
            interconnect=name,
            jain_response=statistics.fmean(o.metrics["jain"] for o in batch),
            worst_best_ratio=statistics.fmean(
                o.metrics["ratio"] for o in batch
            ),
            miss_concentration=statistics.fmean(
                o.metrics["concentration"] for o in batch
            ),
        )
        for name, batch in grouped.items()
        if batch
    ]


def run_fairness(
    n_clients: int = 16,
    utilization: float = 0.8,
    seeds: tuple[int, ...] = (1, 2, 3),
    horizon: int = 15_000,
    interconnects: tuple[str, ...] = INTERCONNECT_NAMES,
    factory: FactoryConfig = DEFAULT_FACTORY_CONFIG,
    executor: Executor | None = None,
    hooks: ExecutionHooks | None = None,
) -> list[FairnessOutcome]:
    """Measure fairness metrics per design over a seed batch."""
    executor = executor or SerialExecutor()
    interconnects = tuple(interconnects)
    specs = build_fairness_specs(
        n_clients, utilization, seeds, horizon, interconnects, factory
    )
    return reduce_fairness(
        interconnects, executor.map(run_fairness_trial, specs, hooks)
    )


def format_fairness(outcomes: list[FairnessOutcome]) -> str:
    """Render the fairness comparison table."""
    from repro.experiments.reporting import format_table

    rows = [
        [
            o.interconnect,
            f"{o.jain_response:.3f}",
            f"{o.worst_best_ratio:.1f}x",
            f"{100 * o.miss_concentration:.0f}%",
        ]
        for o in outcomes
    ]
    return format_table(
        ["interconnect", "Jain index (response)", "worst/best client",
         "miss share of worst client"],
        rows,
        title="Per-client fairness (higher Jain = fairer)",
    )
