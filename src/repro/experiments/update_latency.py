"""Extension experiment — scheduling scalability of workload updates.

Sec. 3.2's third property: when a task joins or leaves a client, only
the server tasks on that client's memory-request path are refreshed.
This experiment quantifies it against the centralized alternative:

* **BlueScale path-local update** — SEs re-resolved and wall-clock time
  of :func:`repro.analysis.composition.update_client`;
* **full recomposition** — re-running :func:`compose` over the tree;
* **centralized (AXI-IC^RT-style)** — all clients' bandwidth budgets
  recomputed.

The structural quantities (SEs touched vs total, budgets recomputed)
are deterministic; wall-clock ratios are hardware-dependent but the
asymptotics (O(log n) vs O(n) work) show at every scale.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

from repro.analysis.cache import AnalysisCache
from repro.analysis.composition import compose
from repro.analysis.interface_selection import SelectionConfig
from repro.analysis.model import SystemModel
from repro.experiments.factory import axi_budgets
from repro.tasks.generators import generate_client_tasksets
from repro.tasks.task import PeriodicTask
from repro.tasks.taskset import TaskSet
from repro.topology import quadtree


@dataclass(frozen=True)
class UpdateCost:
    """Update cost at one system size."""

    n_clients: int
    total_ses: int
    path_ses: int
    changed_ses: int
    centralized_budgets: int
    path_update_seconds: float
    full_recompose_seconds: float
    results_identical: bool

    @property
    def locality(self) -> float:
        """Fraction of the tree an update touches."""
        return self.path_ses / self.total_ses


def measure_update_cost(
    n_clients: int,
    utilization: float = 0.5,
    seed: int = 11,
    joining_client: int | None = None,
    selection_candidates: int = 64,
) -> UpdateCost:
    """Measure one task-join update at ``n_clients``."""
    rng = random.Random(f"update/{seed}")
    tasksets = generate_client_tasksets(rng, n_clients, 2, utilization)
    topology = quadtree(n_clients)
    config = SelectionConfig(max_period_candidates=selection_candidates)
    # Compose once into a frozen model; the join then runs through the
    # per-request AdmissionSession exactly like the service's own path.
    model = SystemModel.build(
        topology,
        tasksets,
        config=config,
        cache=AnalysisCache(),
        label=f"update/{seed}",
    )
    baseline = model.baseline
    client = (
        joining_client if joining_client is not None else n_clients // 2
    )
    joined = PeriodicTask(period=700, wcet=4, name="joined", client_id=client)
    tasksets[client] = tasksets[client].merged_with(TaskSet([joined]))
    session = model.session()
    start = time.perf_counter()
    updated = session.probe(client, joined).composition
    path_seconds = time.perf_counter() - start
    start = time.perf_counter()
    full = compose(topology, tasksets, ctx=model.context)
    full_seconds = time.perf_counter() - start
    path = topology.path_to_root(client)
    changed = sum(
        1
        for node in baseline.interfaces
        if baseline.interfaces[node] != updated.interfaces[node]
    )
    budgets = axi_budgets(n_clients, tasksets, window=200, margin=1.5)
    return UpdateCost(
        n_clients=n_clients,
        total_ses=topology.n_nodes(),
        path_ses=len(path),
        changed_ses=changed,
        centralized_budgets=len(budgets),
        path_update_seconds=path_seconds,
        full_recompose_seconds=full_seconds,
        results_identical=updated.interfaces == full.interfaces,
    )


def run_update_latency(
    client_counts: tuple[int, ...] = (16, 64, 256),
    utilization: float = 0.4,
) -> list[UpdateCost]:
    """Sweep the system size."""
    return [
        measure_update_cost(n, utilization=utilization) for n in client_counts
    ]


def format_update_latency(costs: list[UpdateCost]) -> str:
    """Render the per-size update-cost comparison table."""
    from repro.experiments.reporting import format_table

    rows = [
        [
            cost.n_clients,
            f"{cost.path_ses}/{cost.total_ses}",
            cost.changed_ses,
            cost.centralized_budgets,
            f"{1000 * cost.path_update_seconds:.0f}",
            f"{1000 * cost.full_recompose_seconds:.0f}",
            "yes" if cost.results_identical else "NO",
        ]
        for cost in costs
    ]
    return format_table(
        [
            "clients",
            "SEs touched",
            "SEs changed",
            "central budgets",
            "path update (ms)",
            "recompose (ms)",
            "identical",
        ],
        rows,
        title="Task-join update cost (path-local vs full vs centralized)",
    )
