"""Result persistence: experiment outputs as JSON and CSV files.

Every experiment result object in :mod:`repro.experiments` can be
serialized for archival or plotting.  JSON preserves the full nested
structure; CSV flattens to rows for spreadsheet/pandas use.
"""

from __future__ import annotations

import csv
import dataclasses
import json
from fractions import Fraction
from pathlib import Path
from typing import Any

from repro.errors import ConfigurationError


def _jsonable(value: Any) -> Any:
    """Recursively convert experiment objects to JSON-safe values."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: _jsonable(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, Fraction):
        return float(value)
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    # objects with a dict-like payload (e.g. result classes)
    if hasattr(value, "__dict__"):
        return {
            key: _jsonable(item)
            for key, item in vars(value).items()
            if not key.startswith("_")
        }
    return str(value)


def save_json(result: Any, path: str | Path, label: str = "") -> Path:
    """Serialize any experiment result to a JSON file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {"label": label, "result": _jsonable(result)}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    return path


def load_json(path: str | Path) -> dict[str, Any]:
    """Read a result file back as plain dictionaries."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or "result" not in payload:
        raise ConfigurationError(f"{path} is not a repro result file")
    return payload


def save_csv(
    rows: list[dict[str, Any]], path: str | Path
) -> Path:
    """Write homogeneous row dictionaries as CSV."""
    if not rows:
        raise ConfigurationError("no rows to write")
    fieldnames = list(rows[0])
    for row in rows:
        if list(row) != fieldnames:
            raise ConfigurationError(
                "all CSV rows must share the same columns"
            )
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        writer.writerows(rows)
    return path


def series_rows(
    x_label: str, x_values: list, series: dict[str, list]
) -> list[dict[str, Any]]:
    """Flatten figure series into CSV rows (one row per x, one column
    per curve)."""
    rows = []
    for index, x in enumerate(x_values):
        row: dict[str, Any] = {x_label: x}
        for name, values in series.items():
            row[name] = values[index]
        rows.append(row)
    return rows
