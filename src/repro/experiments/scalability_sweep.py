"""Extension experiment — interconnect-level scalability sweep.

Fig. 6 compares designs at two sizes (16 and 64 clients).  This sweep
fills in the curve: the same fixed per-system utilization simulated
from 4 to 256 clients, reporting each design's deadline-miss ratio and
mean response as the tree deepens.  It also records the analysis-side
*admission ceiling* (breakdown utilization) per size, showing the
composition-overhead trend the docs discuss.
"""

from __future__ import annotations

import random
import statistics
from dataclasses import dataclass, field

from repro.analysis.model import SystemModel
from repro.clients.traffic_generator import TrafficGenerator
from repro.errors import ConfigurationError
from repro.experiments.factory import (
    DEFAULT_FACTORY_CONFIG,
    FactoryConfig,
    build_interconnect,
)
from repro.runtime import (
    Executor,
    ExecutionHooks,
    MetricSet,
    SerialExecutor,
    TrialOutcome,
    TrialSpec,
)
from repro.soc import SoCSimulation
from repro.tasks.generators import generate_client_tasksets
from repro.topology import quadtree


@dataclass(frozen=True)
class SweepPoint:
    """Measurements at one system size for one interconnect."""

    n_clients: int
    interconnect: str
    miss_ratio: float
    mean_response: float


@dataclass
class ScalabilityResult:
    utilization: float
    points: list[SweepPoint] = field(default_factory=list)
    #: analysis admission ceiling per size (BlueScale composition)
    admission_ceiling: dict[int, float] = field(default_factory=dict)

    def series(self, metric: str) -> dict[str, list[float]]:
        names = sorted({p.interconnect for p in self.points})
        sizes = sorted({p.n_clients for p in self.points})
        result: dict[str, list[float]] = {name: [] for name in names}
        for name in names:
            for size in sizes:
                point = next(
                    p
                    for p in self.points
                    if p.interconnect == name and p.n_clients == size
                )
                result[name].append(getattr(point, metric))
        return result

    def sizes(self) -> list[int]:
        return sorted({p.n_clients for p in self.points})


def build_scalability_specs(
    client_counts: tuple[int, ...],
    utilization: float,
    seeds: tuple[int, ...],
    interconnects: tuple[str, ...],
    factory: FactoryConfig = DEFAULT_FACTORY_CONFIG,
) -> list[TrialSpec]:
    """One spec per (system size, interconnect, seed)."""
    specs: list[TrialSpec] = []
    for n_clients in client_counts:
        # keep total simulated work comparable across sizes
        horizon = max(4_000, 64_000 // n_clients)
        for name in interconnects:
            for seed in seeds:
                specs.append(
                    TrialSpec.make(
                        "scalability",
                        len(specs),
                        f"sweep/{seed}/{n_clients}",
                        n_clients=n_clients,
                        interconnect=name,
                        utilization=utilization,
                        horizon=horizon,
                        factory=factory,
                    )
                )
    return specs


def _scalability_sim(spec: TrialSpec) -> SoCSimulation:
    """Build one (size, interconnect, seed) simulation."""
    n_clients = spec.param("n_clients")
    rng = random.Random(spec.seed)
    tasksets = generate_client_tasksets(
        rng, n_clients, 2, spec.param("utilization")
    )
    interconnect = build_interconnect(
        spec.param("interconnect"), n_clients, tasksets, spec.param("factory")
    )
    clients = [
        TrafficGenerator(c, ts, rng=random.Random(spec.client_seed(c)))
        for c, ts in tasksets.items()
    ]
    return SoCSimulation(clients, interconnect)


def _scalability_fold(spec: TrialSpec, trial) -> MetricSet:
    return MetricSet(
        scalars={
            "miss": trial.deadline_miss_ratio,
            "response": trial.response_summary().mean,
        },
        tags={
            "experiment": "scalability",
            "n_clients": str(spec.param("n_clients")),
            "interconnect": spec.param("interconnect"),
        },
    )


def run_scalability_trial(spec: TrialSpec) -> MetricSet:
    """One (size, interconnect, seed) simulation."""
    trial = _scalability_sim(spec).run(spec.param("horizon"), drain=4_000)
    return _scalability_fold(spec, trial)


def run_scalability_batch(specs) -> list[MetricSet]:
    """Batch entry point: the chunk's simulations via the batched
    backend (same-shaped (size, design) trials advance in lock-step;
    results are bit-identical to :func:`run_scalability_trial`)."""
    from repro.sim.batched import run_many

    sims = [_scalability_sim(spec) for spec in specs]
    results = run_many(
        sims,
        horizon=[spec.param("horizon") for spec in specs],
        drain=4_000,
    )
    return [
        _scalability_fold(spec, trial) for spec, trial in zip(specs, results)
    ]


run_scalability_trial.batch = run_scalability_batch


def reduce_scalability(
    utilization: float, outcomes: list[TrialOutcome]
) -> ScalabilityResult:
    """Average per-seed metrics into one point per (size, design)."""
    result = ScalabilityResult(utilization=utilization)
    grouped: dict[tuple[int, str], list[TrialOutcome]] = {}
    for outcome in outcomes:
        key = (
            outcome.spec.param("n_clients"),
            outcome.spec.param("interconnect"),
        )
        grouped.setdefault(key, []).append(outcome)
    for (n_clients, name), batch in grouped.items():
        result.points.append(
            SweepPoint(
                n_clients=n_clients,
                interconnect=name,
                miss_ratio=statistics.fmean(o.metrics["miss"] for o in batch),
                mean_response=statistics.fmean(
                    o.metrics["response"] for o in batch
                ),
            )
        )
    return result


def run_scalability_sweep(
    client_counts: tuple[int, ...] = (4, 16, 64, 256),
    utilization: float = 0.45,
    seeds: tuple[int, ...] = (1, 2),
    interconnects: tuple[str, ...] = ("BlueScale", "BlueTree", "AXI-IC^RT"),
    factory: FactoryConfig = DEFAULT_FACTORY_CONFIG,
    with_admission_ceiling: bool = True,
    analysis_backend: str | None = None,
    executor: Executor | None = None,
    hooks: ExecutionHooks | None = None,
) -> ScalabilityResult:
    """Sweep the system size at a fixed utilization.

    The simulation trials fan out through the executor; the
    analysis-side admission ceiling (exact rational arithmetic, fast)
    stays in-process.  ``analysis_backend`` picks the ceiling search's
    engine backend (None → the process-wide default); the ceilings are
    identical under either backend.
    """
    if not client_counts:
        raise ConfigurationError("need at least one system size")
    executor = executor or SerialExecutor()
    specs = build_scalability_specs(
        tuple(client_counts), utilization, seeds, tuple(interconnects), factory
    )
    outcomes = executor.map(run_scalability_trial, specs, hooks)
    result = reduce_scalability(utilization, outcomes)
    if with_admission_ceiling:
        for n_clients in client_counts:
            rng = random.Random(f"sweep/ceiling/{n_clients}")
            tasksets = generate_client_tasksets(rng, n_clients, 2, 0.2)
            try:
                model = SystemModel.build(
                    quadtree(n_clients), tasksets, backend=analysis_backend
                )
                result.admission_ceiling[n_clients] = (
                    model.session().breakdown(precision=0.1).utilization
                )
            except ConfigurationError:
                result.admission_ceiling[n_clients] = 0.0
    return result


def format_scalability(result: ScalabilityResult) -> str:
    """Render the sweep's miss/response series and admission ceilings."""
    from repro.experiments.reporting import format_series, format_table

    sizes = result.sizes()
    parts = [
        format_series(
            "clients",
            sizes,
            result.series("miss_ratio"),
            title=(
                f"Scalability sweep — miss ratio at utilization "
                f"{result.utilization:.0%}"
            ),
        ),
        format_series(
            "clients",
            sizes,
            result.series("mean_response"),
            title="Scalability sweep — mean response (slots)",
        ),
    ]
    if result.admission_ceiling:
        parts.append(
            format_table(
                ["clients", "admission ceiling (U)"],
                [
                    [n, f"{u:.2f}"]
                    for n, u in sorted(result.admission_ceiling.items())
                ],
                title="BlueScale composition admission ceiling vs size",
            )
        )
    return "\n\n".join(parts)
