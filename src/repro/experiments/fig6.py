"""Experiment F6 — Fig. 6: interconnect-level real-time performance.

Reproduces Sec. 6.3: 16/64 traffic generators replay synthetic periodic
workloads (interconnect utilization drawn from 70–90% per trial,
request priorities assigned by GEDF), against all six interconnects.
Two metrics per design, each with its cross-trial variance:

* **blocking latency** — time a request spends blocked by
  lower-priority requests (reported in time units = transaction slots);
* **deadline miss ratio** — fraction of requests not completed by
  their deadline.

Structured as a runtime triple: :func:`build_fig6_specs` describes the
trials, :func:`run_fig6_trial` executes one (pure function of its
spec), and :func:`reduce_fig6` folds the per-trial metrics back into a
:class:`Fig6Result`.  :func:`run_fig6` wires the three through any
:class:`repro.runtime.Executor`.
"""

from __future__ import annotations

import random
import statistics
from dataclasses import dataclass, field
from typing import Sequence

from repro.clients.traffic_generator import TrafficGenerator
from repro.errors import ConfigurationError
from repro.experiments.factory import (
    DEFAULT_FACTORY_CONFIG,
    INTERCONNECT_NAMES,
    FactoryConfig,
    build_interconnect,
)
from repro.experiments.reporting import format_table
from repro.runtime import (
    Executor,
    ExecutionHooks,
    MetricSet,
    SerialExecutor,
    TrialOutcome,
    TrialSpec,
    derive_seeds,
)
from repro.soc import SoCSimulation
from repro.tasks.generators import generate_client_tasksets


@dataclass(frozen=True)
class Fig6Config:
    """Scale of the Fig. 6 experiment.

    The paper uses 200 trials of 300-second executions on hardware; the
    default here is sized for a laptop-scale run — raise ``trials`` and
    ``horizon`` toward the paper's scale when time permits (results are
    stable well before that).
    """

    n_clients: int = 16
    trials: int = 20
    horizon: int = 20_000
    drain: int = 5_000
    utilization_low: float = 0.70
    utilization_high: float = 0.90
    tasks_per_client: int = 3
    period_min: int = 100
    period_max: int = 4_000
    seed: int = 2022
    factory: FactoryConfig = DEFAULT_FACTORY_CONFIG
    #: engine quiescence fast path; results are identical either way
    #: (the differential tests assert it), False forces cycle-by-cycle
    fast_path: bool = True
    #: opt-in request tracing (repro.observability): per-trial span
    #: rings plus ``{name}/obs/…`` metric scalars; measured results are
    #: identical with it on or off (tracing is observation-only)
    observability: bool = False

    @classmethod
    def paper_scale(cls, n_clients: int = 16) -> "Fig6Config":
        """The paper's scale: 200 trials of 300 s executions.

        At 1 µs per transaction slot a 300 s execution is 3·10⁸ slots;
        that is CI-hostile in pure Python, so this preset keeps the 200
        trials and uses a 200k-slot horizon — two orders of magnitude
        beyond the point where the reported means stabilize.  Expect
        hours of runtime.
        """
        return cls(n_clients=n_clients, trials=200, horizon=200_000, drain=20_000)

    def __post_init__(self) -> None:
        if not 0 < self.utilization_low <= self.utilization_high:
            raise ConfigurationError("invalid utilization range")
        if self.trials < 1 or self.horizon < 1:
            raise ConfigurationError("trials and horizon must be positive")


@dataclass
class InterconnectMetrics:
    """Per-design Fig. 6 measurements across trials."""

    name: str
    blocking_means: list[float] = field(default_factory=list)
    miss_ratios: list[float] = field(default_factory=list)

    @property
    def mean_blocking(self) -> float:
        return statistics.fmean(self.blocking_means) if self.blocking_means else 0.0

    @property
    def blocking_std(self) -> float:
        if len(self.blocking_means) < 2:
            return 0.0
        return statistics.pstdev(self.blocking_means)

    @property
    def mean_miss_ratio(self) -> float:
        return statistics.fmean(self.miss_ratios) if self.miss_ratios else 0.0

    @property
    def miss_ratio_std(self) -> float:
        if len(self.miss_ratios) < 2:
            return 0.0
        return statistics.pstdev(self.miss_ratios)


@dataclass
class Fig6Result:
    config: Fig6Config
    metrics: dict[str, InterconnectMetrics]

    def best_blocking(self) -> str:
        """Design with the shortest mean blocking latency."""
        return min(self.metrics.values(), key=lambda m: m.mean_blocking).name

    def best_miss_ratio(self) -> str:
        return min(self.metrics.values(), key=lambda m: m.mean_miss_ratio).name

    def metric_set(self) -> MetricSet:
        """Aggregate metrics in the shared campaign schema."""
        scalars: dict[str, float] = {}
        for name, m in self.metrics.items():
            scalars[f"{name}/miss"] = m.mean_miss_ratio
            scalars[f"{name}/blocking"] = m.mean_blocking
        return MetricSet(
            scalars=scalars,
            tags={
                "experiment": "fig6",
                "n_clients": str(self.config.n_clients),
            },
        )


def build_fig6_specs(
    config: Fig6Config = Fig6Config(),
    interconnects: tuple[str, ...] = INTERCONNECT_NAMES,
) -> list[TrialSpec]:
    """One spec per trial; each trial covers every interconnect.

    Per-trial seeds are drawn from a ``random.Random`` stream keyed by
    the config, so the batch is deterministic for a given seed and the
    seed list for N trials is a prefix of the list for M > N trials.
    """
    seeds = derive_seeds(
        f"fig6/{config.seed}/{config.n_clients}", config.trials
    )
    return [
        TrialSpec.make(
            "fig6",
            trial,
            seed,
            config=config,
            interconnects=tuple(interconnects),
        )
        for trial, seed in enumerate(seeds)
    ]


def _fig6_sims(spec: TrialSpec) -> list[tuple[str, SoCSimulation]]:
    """Build every design's simulation for one workload draw.

    The taskset draw comes from the trial RNG, and each client's
    private stream is re-derived identically for every interconnect so
    all designs see the same workload.
    """
    config: Fig6Config = spec.param("config")
    interconnects: tuple[str, ...] = spec.param("interconnects")
    trial_rng = random.Random(spec.seed)
    utilization = trial_rng.uniform(
        config.utilization_low, config.utilization_high
    )
    tasksets = generate_client_tasksets(
        trial_rng,
        config.n_clients,
        config.tasks_per_client,
        utilization,
        period_min=config.period_min,
        period_max=config.period_max,
    )
    pairs: list[tuple[str, SoCSimulation]] = []
    for name in interconnects:
        interconnect = build_interconnect(
            name, config.n_clients, tasksets, config.factory
        )
        clients = [
            TrafficGenerator(
                client_id,
                taskset,
                rng=random.Random(spec.client_seed(client_id)),
            )
            for client_id, taskset in tasksets.items()
        ]
        pairs.append(
            (
                name,
                SoCSimulation(
                    clients,
                    interconnect,
                    fast_path=config.fast_path,
                    observability=config.observability,
                ),
            )
        )
    return pairs


def _fig6_fold(spec: TrialSpec, pairs, results) -> MetricSet:
    """Fold one trial's per-design results into its metric set."""
    scalars: dict[str, float] = {}
    tags = {"experiment": "fig6", "trial": str(spec.index)}
    for (name, simulation), result in zip(pairs, results):
        scalars[f"{name}/blocking"] = result.mean_blocking
        scalars[f"{name}/miss"] = result.deadline_miss_ratio
        # The completion-trace digest certifies bit-for-bit equality of
        # runs (golden-trace regression; fast- vs slow-path checks).
        tags[f"{name}/trace"] = result.trace_digest
        if simulation.tracer is not None:
            # Fold the trial's observability registry into the metric
            # set as plain floats: reducers only read the keys they
            # know, so the extra scalars ride through any executor.
            scalars.update(
                simulation.tracer.summary_scalars(prefix=f"{name}/obs/")
            )
    return MetricSet(scalars=scalars, tags=tags)


def run_fig6_trial(spec: TrialSpec) -> MetricSet:
    """Simulate one workload draw against every interconnect.

    Pure function of the spec (see :func:`_fig6_sims`); runs each
    design on the scalar engine one at a time.
    """
    config: Fig6Config = spec.param("config")
    pairs = _fig6_sims(spec)
    results = [
        simulation.run(config.horizon, drain=config.drain)
        for _, simulation in pairs
    ]
    return _fig6_fold(spec, pairs, results)


def run_fig6_batch(specs: Sequence[TrialSpec]) -> list[MetricSet]:
    """Batch entry point: many trials' simulations in one lock-step run.

    Builds every (trial, design) simulation for the chunk and hands
    them to :func:`repro.sim.batched.run_many`, which groups the
    structurally-identical ones and advances each group in lock-step
    (falling back to the scalar engine per trial for anything it cannot
    represent — tracing, the "scalar" backend default, …).  The folded
    metric sets are bit-identical to :func:`run_fig6_trial`'s.
    """
    from repro.sim.batched import run_many

    pairs_per_spec = []
    sims: list[SoCSimulation] = []
    horizons: list[int] = []
    drains: list[int] = []
    for spec in specs:
        config: Fig6Config = spec.param("config")
        pairs = _fig6_sims(spec)
        pairs_per_spec.append(pairs)
        for _, simulation in pairs:
            sims.append(simulation)
            horizons.append(config.horizon)
            drains.append(config.drain)
    results = run_many(sims, horizon=horizons, drain=drains)
    folded: list[MetricSet] = []
    at = 0
    for spec, pairs in zip(specs, pairs_per_spec):
        folded.append(_fig6_fold(spec, pairs, results[at : at + len(pairs)]))
        at += len(pairs)
    return folded


run_fig6_trial.batch = run_fig6_batch


def reduce_fig6(
    config: Fig6Config,
    interconnects: tuple[str, ...],
    outcomes: list[TrialOutcome],
) -> Fig6Result:
    """Fold per-trial metric sets into the per-design distributions."""
    metrics = {name: InterconnectMetrics(name) for name in interconnects}
    for outcome in outcomes:
        for name in interconnects:
            metrics[name].blocking_means.append(
                outcome.metrics[f"{name}/blocking"]
            )
            metrics[name].miss_ratios.append(outcome.metrics[f"{name}/miss"])
    return Fig6Result(config=config, metrics=metrics)


def run_fig6(
    config: Fig6Config = Fig6Config(),
    interconnects: tuple[str, ...] = INTERCONNECT_NAMES,
    executor: Executor | None = None,
    hooks: ExecutionHooks | None = None,
) -> Fig6Result:
    """Run the Fig. 6 experiment for one client count."""
    executor = executor or SerialExecutor()
    interconnects = tuple(interconnects)
    specs = build_fig6_specs(config, interconnects)
    outcomes = executor.map(run_fig6_trial, specs, hooks)
    return reduce_fig6(config, interconnects, outcomes)


def format_fig6(result: Fig6Result) -> str:
    """Render the Fig. 6 bars: blocking latency and miss ratio ± std."""
    rows = []
    for name in result.metrics:
        m = result.metrics[name]
        rows.append(
            [
                name,
                f"{m.mean_blocking:.2f} ± {m.blocking_std:.2f}",
                f"{100 * m.mean_miss_ratio:.2f} ± {100 * m.miss_ratio_std:.2f}",
            ]
        )
    return format_table(
        ["Interconnect", "Blocking latency (slots)", "Deadline miss ratio (%)"],
        rows,
        title=(
            f"Fig 6 — {result.config.n_clients} traffic generators, "
            f"{result.config.trials} trials, utilization "
            f"{result.config.utilization_low:.0%}-{result.config.utilization_high:.0%}"
        ),
    )


def main() -> None:  # pragma: no cover - CLI convenience
    for n_clients in (16, 64):
        result = run_fig6(Fig6Config(n_clients=n_clients, trials=5))
        print(format_fig6(result))
        print()


if __name__ == "__main__":  # pragma: no cover
    main()
