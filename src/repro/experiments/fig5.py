"""Experiment F5 — Fig. 5: hardware scalability vs scaling factor η.

Sweeps η = 1..7 (2^η clients) and reports, per Fig. 5's three panels:

* (a) area as a fraction of the platform, for the legacy system,
  AXI-IC^RT, BlueScale, and the legacy system plus each interconnect;
* (b) power consumption of the same five configurations;
* (c) maximum synthesizable frequency of the legacy system, AXI-IC^RT
  and BlueScale.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.experiments.reporting import format_series
from repro.hardware.cost_model import (
    area_fraction,
    axi_icrt_cost,
    bluescale_cost,
    legacy_system_cost,
)
from repro.hardware.frequency import (
    axi_icrt_fmax_mhz,
    bluescale_fmax_mhz,
    legacy_fmax_mhz,
)


@dataclass
class Fig5Result:
    """All three panels' series, indexed by η."""

    etas: list[int]
    #: Fig 5(a): area fraction of the platform
    area: dict[str, list[float]] = field(default_factory=dict)
    #: Fig 5(b): power in watts
    power_w: dict[str, list[float]] = field(default_factory=dict)
    #: Fig 5(c): fmax in MHz
    fmax_mhz: dict[str, list[float]] = field(default_factory=dict)

    def crossover_eta(self) -> int | None:
        """First η at which AXI-IC^RT's fmax falls below the legacy system's
        (the paper observes this past η = 5, i.e. more than 32 clients)."""
        for eta, axi, legacy in zip(
            self.etas, self.fmax_mhz["AXI-IC^RT"], self.fmax_mhz["Legacy"]
        ):
            if axi < legacy:
                return eta
        return None


def run_fig5(eta_min: int = 1, eta_max: int = 7) -> Fig5Result:
    """Compute the Fig. 5 series for η in [eta_min, eta_max]."""
    if not 1 <= eta_min <= eta_max:
        raise ConfigurationError(f"invalid η range [{eta_min}, {eta_max}]")
    etas = list(range(eta_min, eta_max + 1))
    result = Fig5Result(etas=etas)
    names = ["Legacy", "AXI-IC^RT", "BlueScale", "Legacy+AXI-IC^RT", "Legacy+BlueScale"]
    result.area = {name: [] for name in names}
    result.power_w = {name: [] for name in names}
    result.fmax_mhz = {name: [] for name in names[:3]}
    for eta in etas:
        n = 2**eta
        legacy = legacy_system_cost(n)
        axi = axi_icrt_cost(n)
        bluescale = bluescale_cost(n)
        result.area["Legacy"].append(area_fraction(legacy))
        result.area["AXI-IC^RT"].append(area_fraction(axi))
        result.area["BlueScale"].append(area_fraction(bluescale))
        result.area["Legacy+AXI-IC^RT"].append(area_fraction(legacy + axi))
        result.area["Legacy+BlueScale"].append(area_fraction(legacy + bluescale))
        result.power_w["Legacy"].append(legacy.power_mw / 1000)
        result.power_w["AXI-IC^RT"].append(axi.power_mw / 1000)
        result.power_w["BlueScale"].append(bluescale.power_mw / 1000)
        result.power_w["Legacy+AXI-IC^RT"].append(
            (legacy.power_mw + axi.power_mw) / 1000
        )
        result.power_w["Legacy+BlueScale"].append(
            (legacy.power_mw + bluescale.power_mw) / 1000
        )
        result.fmax_mhz["Legacy"].append(legacy_fmax_mhz(n))
        result.fmax_mhz["AXI-IC^RT"].append(axi_icrt_fmax_mhz(n))
        result.fmax_mhz["BlueScale"].append(bluescale_fmax_mhz(n))
    return result


def format_fig5(result: Fig5Result) -> str:
    """Render all three Fig. 5 panels plus the crossover note."""
    parts = [
        format_series(
            "η", result.etas, result.area, title="Fig 5(a) — area fraction"
        ),
        format_series(
            "η", result.etas, result.power_w, title="Fig 5(b) — power (W)"
        ),
        format_series(
            "η", result.etas, result.fmax_mhz, title="Fig 5(c) — fmax (MHz)"
        ),
    ]
    crossover = result.crossover_eta()
    parts.append(
        f"AXI-IC^RT fmax falls below the legacy system at η = {crossover} "
        f"(paper: past η = 5)"
    )
    return "\n\n".join(parts)


def main() -> None:  # pragma: no cover - CLI convenience
    print(format_fig5(run_fig5()))


if __name__ == "__main__":  # pragma: no cover
    main()
