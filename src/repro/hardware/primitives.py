"""FPGA primitive cost constants.

The hardware overhead model (Table 1, Fig. 5) is *structural*: each
interconnect is decomposed into the primitives its micro-architecture
actually instantiates (FIFO entries, comparators, muxes, counters,
ALUs, …) and their LUT/register costs are summed.  The per-primitive
constants below are calibrated against the paper's Vivado 2021.1
synthesis results on the VC707 (Table 1) so that the 16-client
configurations land on the published numbers; the *scaling* behaviour
(Fig. 5) then follows from the structure alone.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PrimitiveCosts:
    """LUT/register cost of the building blocks (6-input-LUT fabric)."""

    #: request-path record width: address + deadline tag + routing meta
    request_width_bits: int = 45
    #: deadline-comparator operand width
    deadline_bits: int = 24
    #: LUTs per bit of a 2:1 mux
    lut_per_mux2_bit: float = 0.5
    #: LUTs per bit of a magnitude comparator
    lut_per_cmp_bit: float = 0.5
    #: 32-bit countdown counter (P-/B-counter): registers and LUTs
    counter32_registers: int = 32
    counter32_luts: int = 16
    #: FIFO control (pointers, full/empty flags) per port
    fifo_control_luts: int = 20
    fifo_control_registers: int = 13
    #: small FSM (interface-selector control path)
    fsm_luts: int = 40
    fsm_registers: int = 42
    #: 32-bit ALU of the interface-selector data path
    alu32_luts: int = 150

    def mux2_luts(self, width_bits: int) -> float:
        return self.lut_per_mux2_bit * width_bits

    def comparator_luts(self, width_bits: int) -> float:
        return self.lut_per_cmp_bit * width_bits

    def request_register_bits(self, entries: int) -> int:
        return entries * self.request_width_bits


DEFAULT_PRIMITIVES = PrimitiveCosts()


@dataclass(frozen=True)
class HardwareReport:
    """One design's synthesis-style resource report (Table 1 row)."""

    luts: int
    registers: int
    dsps: int
    ram_kb: int
    power_mw: float

    def __add__(self, other: "HardwareReport") -> "HardwareReport":
        return HardwareReport(
            luts=self.luts + other.luts,
            registers=self.registers + other.registers,
            dsps=self.dsps + other.dsps,
            ram_kb=self.ram_kb + other.ram_kb,
            power_mw=self.power_mw + other.power_mw,
        )

    def scaled(self, factor: int) -> "HardwareReport":
        return HardwareReport(
            luts=self.luts * factor,
            registers=self.registers * factor,
            dsps=self.dsps * factor,
            ram_kb=self.ram_kb * factor,
            power_mw=self.power_mw * factor,
        )
