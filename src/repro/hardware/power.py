"""Power estimation (Table 1 power column; Fig. 5(b)).

Vivado's power figure is dominated by design area times switching
activity; the paper assigned all designs the same voltage, frequency
and simulated toggle rate *inputs*, but the realized activity differs
per micro-architecture (combinational arbiters toggle far more than
quiet FIFO datapaths).  The model below multiplies a resource-weighted
raw power by a per-design activity factor calibrated against Table 1.
"""

from __future__ import annotations

from repro.errors import ConfigurationError

#: mW per LUT of raw (unit-activity) dynamic power
LUT_MW = 0.008
#: mW per register
REGISTER_MW = 0.003
#: mW per KB of RAM
RAM_KB_MW = 0.5
#: mW per DSP slice
DSP_MW = 10.0

#: calibrated switching-activity factors (dimensionless)
ACTIVITY = {
    "bluetree": 1.218,
    "bluetree-smooth": 1.406,
    "gsmtree": 1.794,
    "axi-icrt": 1.141,
    "bluescale": 1.735,
    "microblaze": 1.532,
    "riscv": 1.014,
    "legacy": 1.0,
}


def raw_power_mw(
    luts: float, registers: float, ram_kb: float = 0.0, dsps: float = 0.0
) -> float:
    """Resource-weighted power at unit switching activity."""
    if min(luts, registers, ram_kb, dsps) < 0:
        raise ConfigurationError("resource counts cannot be negative")
    return (
        LUT_MW * luts + REGISTER_MW * registers + RAM_KB_MW * ram_kb + DSP_MW * dsps
    )


def estimate_power_mw(
    design: str,
    luts: float,
    registers: float,
    ram_kb: float = 0.0,
    dsps: float = 0.0,
) -> float:
    """Estimated total power of ``design`` with the given resources."""
    try:
        activity = ACTIVITY[design]
    except KeyError:
        raise ConfigurationError(
            f"unknown design {design!r}; known: {sorted(ACTIVITY)}"
        ) from None
    return activity * raw_power_mw(luts, registers, ram_kb, dsps)
