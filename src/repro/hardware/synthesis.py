"""Synthesis-style utilization reports for configured systems.

Turns the hardware cost models into the kind of per-component
utilization report an FPGA flow emits: component tree, resource
columns, platform utilization percentages, timing summary.  Used by
examples and the design-space tooling; everything derives from
:mod:`repro.hardware.cost_model` and :mod:`repro.hardware.frequency`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.hardware.cost_model import (
    PLATFORM_LUTS,
    bluescale_cost,
    legacy_system_cost,
    scale_element_cost,
)
from repro.hardware.frequency import (
    bluescale_fmax_mhz,
    legacy_fmax_mhz,
    system_fmax_mhz,
)
from repro.hardware.primitives import HardwareReport
from repro.topology import TreeTopology


@dataclass(frozen=True)
class ComponentLine:
    """One row of the utilization report."""

    name: str
    instances: int
    report: HardwareReport


@dataclass
class SynthesisReport:
    """A platform-level report for one BlueScale configuration."""

    n_clients: int
    fanout: int
    components: list[ComponentLine] = field(default_factory=list)

    @property
    def totals(self) -> HardwareReport:
        total = HardwareReport(0, 0, 0, 0, 0.0)
        for line in self.components:
            total = total + line.report.scaled(line.instances)
        return total

    @property
    def lut_utilization(self) -> float:
        return self.totals.luts / PLATFORM_LUTS

    def fmax_mhz(self) -> float:
        return system_fmax_mhz(
            bluescale_fmax_mhz(self.n_clients), self.n_clients
        )

    def timing_limited_by(self) -> str:
        if bluescale_fmax_mhz(self.n_clients) < legacy_fmax_mhz(self.n_clients):
            return "interconnect"
        return "cores"


def synthesize_bluescale_system(
    n_clients: int,
    buffer_depth: int = 2,
    fanout: int = 4,
    include_legacy: bool = True,
) -> SynthesisReport:
    """Build the utilization report of a BlueScale-equipped platform."""
    if n_clients < 2:
        raise ConfigurationError(
            f"a system needs at least 2 clients, got {n_clients}"
        )
    topology = TreeTopology(n_clients=n_clients, fanout=fanout)
    report = SynthesisReport(n_clients=n_clients, fanout=fanout)
    per_se = scale_element_cost(buffer_depth, fanout=fanout)
    levels: dict[int, int] = {}
    for level, order in topology.all_nodes():
        levels[level] = levels.get(level, 0) + 1
    for level in sorted(levels):
        role = "root" if level == 0 else (
            "leaf" if level == topology.depth else "interior"
        )
        report.components.append(
            ComponentLine(
                name=f"scale_element[level {level}, {role}]",
                instances=levels[level],
                report=per_se,
            )
        )
    if include_legacy:
        report.components.append(
            ComponentLine(
                name="legacy platform (cores + NoC share)",
                instances=1,
                report=legacy_system_cost(n_clients),
            )
        )
    return report


def format_synthesis_report(report: SynthesisReport) -> str:
    """Render the report the way a synthesis log reads."""
    from repro.experiments.reporting import format_table

    rows = []
    for line in report.components:
        scaled = line.report.scaled(line.instances)
        rows.append(
            [
                line.name,
                line.instances,
                scaled.luts,
                scaled.registers,
                scaled.ram_kb,
                f"{scaled.power_mw:.0f}",
            ]
        )
    totals = report.totals
    rows.append(
        [
            "TOTAL",
            "",
            totals.luts,
            totals.registers,
            totals.ram_kb,
            f"{totals.power_mw:.0f}",
        ]
    )
    table = format_table(
        ["component", "inst", "LUTs", "regs", "RAM(KB)", "power(mW)"],
        rows,
        title=(
            f"Utilization report — BlueScale {report.n_clients} clients, "
            f"{report.fanout}-to-1 SEs"
        ),
    )
    footer = (
        f"\nplatform LUT utilization: {report.lut_utilization:.1%}"
        f"\nachievable system clock: {report.fmax_mhz():.0f} MHz "
        f"(limited by {report.timing_limited_by()})"
    )
    cross_check = bluescale_cost(report.n_clients, fanout=report.fanout)
    interconnect_total = sum(
        line.report.scaled(line.instances).luts
        for line in report.components
        if line.name.startswith("scale_element")
    )
    assert interconnect_total == cross_check.luts
    return table + footer
