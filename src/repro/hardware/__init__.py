"""Analytical hardware models: area, power, maximum frequency."""

from repro.hardware.primitives import (
    DEFAULT_PRIMITIVES,
    HardwareReport,
    PrimitiveCosts,
)
from repro.hardware.power import estimate_power_mw, raw_power_mw
from repro.hardware.cost_model import (
    DESIGN_COSTS,
    PLATFORM_LUTS,
    area_fraction,
    axi_icrt_cost,
    bluescale_cost,
    bluetree_cost,
    bluetree_smooth_cost,
    gsmtree_cost,
    legacy_system_cost,
    microblaze_cost,
    riscv_cost,
    scale_element_cost,
)
from repro.hardware.synthesis import (
    ComponentLine,
    SynthesisReport,
    format_synthesis_report,
    synthesize_bluescale_system,
)
from repro.hardware.frequency import (
    arbitration_interval,
    axi_icrt_fmax_mhz,
    bluescale_fmax_mhz,
    legacy_fmax_mhz,
    scaling_factor,
    system_fmax_mhz,
)

__all__ = [
    "DEFAULT_PRIMITIVES",
    "HardwareReport",
    "PrimitiveCosts",
    "estimate_power_mw",
    "raw_power_mw",
    "DESIGN_COSTS",
    "PLATFORM_LUTS",
    "area_fraction",
    "axi_icrt_cost",
    "bluescale_cost",
    "bluetree_cost",
    "bluetree_smooth_cost",
    "gsmtree_cost",
    "legacy_system_cost",
    "microblaze_cost",
    "riscv_cost",
    "scale_element_cost",
    "ComponentLine",
    "SynthesisReport",
    "format_synthesis_report",
    "synthesize_bluescale_system",
    "arbitration_interval",
    "axi_icrt_fmax_mhz",
    "bluescale_fmax_mhz",
    "legacy_fmax_mhz",
    "scaling_factor",
    "system_fmax_mhz",
]
