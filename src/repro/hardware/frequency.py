"""Maximum-frequency model (Fig. 5(c)).

The achievable clock of a synthesized design is limited by its longest
combinational path.  For the centralized AXI-IC^RT the critical path is
the monolithic arbiter, whose comparator fan-in grows with the client
count — so fmax falls as the system scales, and past 32 clients the
interconnect (not the cores) limits the whole system.  BlueScale's
Scale Elements are synthesized independently with a constant 4-client
fan-in, so its fmax is flat and always above the legacy system's.

Constants are calibrated to reproduce Fig. 5(c)'s crossover: AXI-IC^RT
drops below the legacy system's frequency when the system exceeds 32
clients (η > 5).
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError

#: baseline fabric frequency achievable for a tuned datapath (MHz)
_FABRIC_FMAX_MHZ = 600.0
#: legacy system fmax parameters: slight decline as the NoC grows
_LEGACY_BASE_MHZ = 360.0
_LEGACY_DECLINE_MHZ_PER_ETA = 5.0
#: BlueScale: constant small-fan-in elements, mild routing pressure
_BLUESCALE_BASE_MHZ = 455.0
_BLUESCALE_DECLINE_MHZ_PER_ETA = 3.0
#: AXI-IC^RT arbiter critical-path growth coefficient
_AXI_PATH_COEFF = 0.0045


def _check(n_clients: int) -> None:
    if n_clients < 2:
        raise ConfigurationError(f"need at least 2 clients, got {n_clients}")


def scaling_factor(n_clients: int) -> int:
    """η with n = 2^η (rounded up for non-powers of two)."""
    _check(n_clients)
    return max(1, math.ceil(math.log2(n_clients)))


def legacy_fmax_mhz(n_clients: int) -> float:
    """Legacy many-core system without an evaluated interconnect."""
    eta = scaling_factor(n_clients)
    return _LEGACY_BASE_MHZ - _LEGACY_DECLINE_MHZ_PER_ETA * eta


def bluescale_fmax_mhz(n_clients: int) -> float:
    """BlueScale: independent 4-to-1 SEs keep the critical path flat."""
    eta = scaling_factor(n_clients)
    return _BLUESCALE_BASE_MHZ - _BLUESCALE_DECLINE_MHZ_PER_ETA * eta


def axi_icrt_fmax_mhz(n_clients: int) -> float:
    """AXI-IC^RT: the monolithic arbiter's fan-in throttles the clock."""
    _check(n_clients)
    path = 1.0 + _AXI_PATH_COEFF * n_clients * math.log2(n_clients)
    return _FABRIC_FMAX_MHZ / path


def system_fmax_mhz(interconnect_fmax: float, n_clients: int) -> float:
    """System clock: min of legacy fabric and the interconnect."""
    return min(interconnect_fmax, legacy_fmax_mhz(n_clients))


def arbitration_interval(n_clients: int, interconnect_fmax_mhz: float) -> int:
    """Transaction-slot penalty of a slower-clocked arbiter.

    When an interconnect's achievable clock falls below the legacy
    platform frequency, its arbiter effectively decides less often per
    memory-transaction slot; the simulator expresses this as deciding
    every ``k`` slots.  Full-speed designs get ``k = 1``.
    """
    reference = legacy_fmax_mhz(n_clients)
    if interconnect_fmax_mhz >= reference:
        return 1
    return math.ceil(reference / interconnect_fmax_mhz)
