"""Structural hardware cost model for every design in Table 1.

Each ``*_cost`` function decomposes one design into the primitives its
micro-architecture instantiates and sums their costs.  The 16-client
configurations reproduce the paper's Table 1 within a few percent (the
tests pin this down); scaling the client count then yields Fig. 5's
area/power curves from structure alone.

MicroBlaze and RISC-V are third-party processor IP used by the paper
only as size yardsticks; their resource numbers are reference constants
(from Table 1 / the cited implementations), not structural models.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.hardware.power import estimate_power_mw
from repro.hardware.primitives import DEFAULT_PRIMITIVES, HardwareReport, PrimitiveCosts
from repro.topology import TreeTopology, binary_tree


def _check_clients(n_clients: int) -> None:
    if n_clients < 2:
        raise ConfigurationError(
            f"an interconnect needs at least 2 clients, got {n_clients}"
        )


# ---------------------------------------------------------------------------
# BlueTree family — binary trees of 2:1 mux nodes
# ---------------------------------------------------------------------------
def _bluetree_node(
    prim: PrimitiveCosts, fifo_depth: int, smoothing: bool, fcfs_tags: bool
) -> tuple[float, float]:
    """(luts, registers) of one 2:1 mux node."""
    rw = prim.request_width_bits
    registers = 2 * fifo_depth * rw + prim.fifo_control_registers
    luts = (
        prim.mux2_luts(rw)  # output mux
        + 2 * prim.fifo_control_luts  # one FIFO controller per port
        + 49  # α-counter / handshake arbiter (calibrated)
    )
    if fcfs_tags:
        luts += prim.comparator_luts(8)  # arrival-tag compare
    if smoothing:
        # Output skid register smoothing the access path.
        registers += rw
        luts += rw
    return luts, registers


def bluetree_cost(
    n_clients: int,
    fifo_depth: int = 2,
    prim: PrimitiveCosts = DEFAULT_PRIMITIVES,
) -> HardwareReport:
    """BlueTree: n−1 mux nodes with blocking-factor arbiters."""
    _check_clients(n_clients)
    topology: TreeTopology = binary_tree(n_clients)
    node_luts, node_regs = _bluetree_node(prim, fifo_depth, False, False)
    n_nodes = topology.n_nodes()
    luts = round(n_nodes * node_luts)
    registers = round(n_nodes * node_regs)
    return HardwareReport(
        luts=luts,
        registers=registers,
        dsps=0,
        ram_kb=0,
        power_mw=round(estimate_power_mw("bluetree", luts, registers), 1),
    )


def bluetree_smooth_cost(
    n_clients: int,
    fifo_depth: int = 2,
    prim: PrimitiveCosts = DEFAULT_PRIMITIVES,
) -> HardwareReport:
    """BlueTree-Smooth: BlueTree plus per-node smoothing buffers."""
    _check_clients(n_clients)
    topology = binary_tree(n_clients)
    node_luts, node_regs = _bluetree_node(prim, fifo_depth, True, False)
    n_nodes = topology.n_nodes()
    luts = round(n_nodes * node_luts)
    registers = round(n_nodes * node_regs)
    return HardwareReport(
        luts=luts,
        registers=registers,
        dsps=0,
        ram_kb=0,
        power_mw=round(estimate_power_mw("bluetree-smooth", luts, registers), 1),
    )


def gsmtree_cost(
    n_clients: int,
    fifo_depth: int = 2,
    prim: PrimitiveCosts = DEFAULT_PRIMITIVES,
) -> HardwareReport:
    """GSMTree: FCFS mux nodes plus the global TDM arbitration unit.

    The TDM unit keeps the slot frame in RAM (8 KB per 16 clients) with
    a slot decoder and frame counters at the root.
    """
    _check_clients(n_clients)
    topology = binary_tree(n_clients)
    node_luts, node_regs = _bluetree_node(prim, fifo_depth, False, True)
    n_nodes = topology.n_nodes()
    tdm_luts = 710  # slot decoder + RAM interface (calibrated)
    tdm_regs = 220  # frame pointer / configuration registers
    luts = round(n_nodes * node_luts + tdm_luts)
    registers = round(n_nodes * node_regs + tdm_regs)
    ram_kb = 8 * ((n_clients + 15) // 16)
    return HardwareReport(
        luts=luts,
        registers=registers,
        dsps=0,
        ram_kb=ram_kb,
        power_mw=round(estimate_power_mw("gsmtree", luts, registers, ram_kb), 1),
    )


# ---------------------------------------------------------------------------
# AXI-IC^RT — centralized switch box + monolithic arbiter
# ---------------------------------------------------------------------------
#: AXI read/write channel datapath width (bits)
_AXI_DATAPATH_BITS = 64
#: fixed burst/handshake control logic of the switch box (calibrated)
_AXI_CONTROL_LUTS = 236
#: per-client address decode + QoS bookkeeping (calibrated)
_AXI_PER_CLIENT_LUTS = 80


def axi_icrt_cost(
    n_clients: int,
    fifo_depth: int = 4,
    prim: PrimitiveCosts = DEFAULT_PRIMITIVES,
) -> HardwareReport:
    """AXI-IC^RT: per-client ingress FIFOs, n:1 crossbar (read and write
    channels), deadline-comparator arbitration tree, per-client
    bandwidth regulators, and the switch-box control plane.

    The arbitration tree's ``n·log2(n)`` term is what makes the
    centralized design scale worse than linearly (Fig. 5(a))."""
    _check_clients(n_clients)
    rw = prim.request_width_bits
    log2n = max(1, (n_clients - 1).bit_length())
    # registers: ingress FIFOs + token counters + pipeline stages
    registers = (
        n_clients * (fifo_depth * rw + prim.fifo_control_registers)
        + n_clients * 16  # 16-bit regulation token counter per client
        + 2 * rw  # two-stage output pipeline
    )
    luts = (
        n_clients * prim.fifo_control_luts
        + 2 * (n_clients - 1) * prim.mux2_luts(_AXI_DATAPATH_BITS)  # R+W crossbars
        + (n_clients - 1) * prim.comparator_luts(prim.deadline_bits)
        + n_clients * log2n * 10  # arbitration tree: fan-in grows with n
        + n_clients * 8  # regulator decrement/compare
        + n_clients * _AXI_PER_CLIENT_LUTS
        + _AXI_CONTROL_LUTS
    )
    luts = round(luts)
    registers = round(registers)
    return HardwareReport(
        luts=luts,
        registers=registers,
        dsps=0,
        ram_kb=0,
        power_mw=round(estimate_power_mw("axi-icrt", luts, registers), 1),
    )


# ---------------------------------------------------------------------------
# BlueScale — quadtree of Scale Elements
# ---------------------------------------------------------------------------
def scale_element_cost(
    buffer_depth: int = 2,
    prim: PrimitiveCosts = DEFAULT_PRIMITIVES,
    fanout: int = 4,
) -> HardwareReport:
    """One Scale Element (Fig. 2(b)): ``fanout`` random-access buffers,
    the local scheduler (one P/B counter pair per port + scheduling
    circuits), the interface selector (ALU + FSM + 2 KB scratchpad), and
    the response demux.  The paper's SE is 4-to-1; other fan-outs cost
    the design-space ablations."""
    if fanout < 2:
        raise ConfigurationError(f"SE fanout must be >= 2, got {fanout}")
    rw = prim.request_width_bits
    # Random access buffers: register banks + comparator/mux arbiter each.
    buffer_regs = fanout * buffer_depth * rw
    buffer_luts = fanout * (
        (buffer_depth - 1) * prim.comparator_luts(prim.deadline_bits)
        + prim.mux2_luts(rw)
        + 12  # loader/fetcher handshake
    )
    # Local scheduler: per-port (P-counter + B-counter) + circuits.
    scheduler_regs = fanout * 2 * prim.counter32_registers + fanout
    scheduler_luts = (
        fanout * 2 * prim.counter32_luts
        + (fanout - 1) * prim.comparator_luts(prim.deadline_bits)  # EDF tree
        + prim.mux2_luts(rw)
        + fanout  # budget XOR gates
    )
    # Interface selector: ALU + FSM (scratchpad is RAM, counted separately).
    selector_regs = prim.fsm_registers
    selector_luts = prim.alu32_luts + prim.fsm_luts
    demux_luts = prim.mux2_luts(rw)
    luts = round(buffer_luts + scheduler_luts + selector_luts + demux_luts)
    registers = round(buffer_regs + scheduler_regs + selector_regs)
    return HardwareReport(
        luts=luts,
        registers=registers,
        dsps=0,
        ram_kb=2,
        power_mw=round(estimate_power_mw("bluescale", luts, registers, 2), 1),
    )


def bluescale_cost(
    n_clients: int,
    buffer_depth: int = 2,
    prim: PrimitiveCosts = DEFAULT_PRIMITIVES,
    fanout: int = 4,
) -> HardwareReport:
    """BlueScale: one Scale Element per tree node (quadtree by default)."""
    _check_clients(n_clients)
    topology = TreeTopology(n_clients=n_clients, fanout=fanout)
    per_element = scale_element_cost(buffer_depth, prim, fanout)
    n_elements = topology.n_nodes()
    luts = per_element.luts * n_elements
    registers = per_element.registers * n_elements
    ram_kb = per_element.ram_kb * n_elements
    return HardwareReport(
        luts=luts,
        registers=registers,
        dsps=0,
        ram_kb=ram_kb,
        power_mw=round(
            estimate_power_mw("bluescale", luts, registers, ram_kb), 1
        ),
    )


# ---------------------------------------------------------------------------
# Reference IP and the legacy system
# ---------------------------------------------------------------------------
def microblaze_cost() -> HardwareReport:
    """Fully featured MicroBlaze (pipeline + caches), Table 1 reference."""
    return HardwareReport(luts=4993, registers=4295, dsps=6, ram_kb=256, power_mw=369.0)


def riscv_cost() -> HardwareReport:
    """Out-of-order RISC-V soft core (Mashimo et al.), Table 1 reference."""
    return HardwareReport(
        luts=7433, registers=16544, dsps=21, ram_kb=512, power_mw=583.0
    )


#: per-client area/power of the legacy many-core platform in the Fig. 5
#: scaling experiment (lightweight core + NoC share; calibrated so the
#: 128-client legacy system occupies ~50% of a VC707)
LEGACY_CLIENT_LUTS = 1200
LEGACY_CLIENT_REGISTERS = 1100
LEGACY_CLIENT_POWER_MW = 12.0


def legacy_system_cost(n_clients: int) -> HardwareReport:
    """The many-core platform without any evaluated interconnect."""
    if n_clients < 1:
        raise ConfigurationError("legacy system needs at least one client")
    return HardwareReport(
        luts=LEGACY_CLIENT_LUTS * n_clients,
        registers=LEGACY_CLIENT_REGISTERS * n_clients,
        dsps=0,
        ram_kb=0,
        power_mw=LEGACY_CLIENT_POWER_MW * n_clients,
    )


#: LUT capacity of the Xilinx VC707 evaluation board (XC7VX485T)
PLATFORM_LUTS = 303_600


def area_fraction(report: HardwareReport) -> float:
    """Design area as a fraction of the platform (Fig. 5(a) y-axis)."""
    return report.luts / PLATFORM_LUTS


DESIGN_COSTS = {
    "AXI-IC^RT": axi_icrt_cost,
    "BlueTree": bluetree_cost,
    "BlueTree-Smooth": bluetree_smooth_cost,
    "GSMTree": gsmtree_cost,
    "BlueScale": bluescale_cost,
}
