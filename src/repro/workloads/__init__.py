"""Case-study workloads: automotive tasks and interference generators."""

from repro.workloads.automotive import (
    ALL_PROFILES,
    FUNCTION_PROFILES,
    SAFETY_PROFILES,
    WorkloadProfile,
    assign_case_study,
    case_study_taskset,
    function_taskset,
    profile_by_name,
    safety_taskset,
)
from repro.workloads.avionics import (
    ALL_AVIONICS,
    DAL_LEVELS,
    PARTITIONS,
    AvionicsProfile,
    assign_partitions,
    partition_taskset,
    tasks_at_or_above,
)
from repro.workloads.interference import (
    DNN_STREAMS,
    build_interference,
    dnn_interference_taskset,
)

__all__ = [
    "ALL_PROFILES",
    "FUNCTION_PROFILES",
    "SAFETY_PROFILES",
    "WorkloadProfile",
    "assign_case_study",
    "case_study_taskset",
    "function_taskset",
    "profile_by_name",
    "safety_taskset",
    "ALL_AVIONICS",
    "DAL_LEVELS",
    "PARTITIONS",
    "AvionicsProfile",
    "assign_partitions",
    "partition_taskset",
    "tasks_at_or_above",
    "DNN_STREAMS",
    "build_interference",
    "dnn_interference_taskset",
]
