"""Interference workloads for the case study (paper Sec. 6.4).

Two categories, mirroring the paper:

* **Processor interference** — EEMBC-style synthetic tasks added to the
  processor clients to raise the system to a *target utilization*.
  ``build_interference`` splits the missing utilization over clients
  (UUniFast-discard) and synthesizes small-burst transaction tasks.
* **HA interference** — DNN inference streams (SqueezeNet-style models
  trained on MNIST / EMNIST / CIFAR-10), which are periodic large-burst
  fetch tasks for the accelerator client.
"""

from __future__ import annotations

import random

from repro.errors import ConfigurationError
from repro.tasks.generators import generate_transaction_taskset, uunifast_discard
from repro.tasks.task import PeriodicTask
from repro.tasks.taskset import TaskSet


def build_interference(
    rng: random.Random,
    client_utilizations: dict[int, float],
    target_system_utilization: float,
    tasks_per_client: int = 2,
    period_min: int = 100,
    period_max: int = 4000,
    wcet_max: int = 8,
) -> dict[int, TaskSet]:
    """Interference tasks bringing the system to a target utilization.

    ``client_utilizations`` maps every client id to its application
    utilization.  The gap to ``target_system_utilization`` is split over
    all clients such that no client exceeds utilization 1.  Returns the
    per-client interference task sets (possibly empty when the target is
    already met).
    """
    if not client_utilizations:
        raise ConfigurationError("need at least one client")
    if not 0 < target_system_utilization <= len(client_utilizations):
        raise ConfigurationError(
            f"target utilization {target_system_utilization} out of range"
        )
    current = sum(client_utilizations.values())
    gap = target_system_utilization - current
    clients = sorted(client_utilizations)
    empty = {c: TaskSet() for c in clients}
    if gap <= 1e-9:
        return empty
    headrooms = {c: max(0.0, 0.98 - client_utilizations[c]) for c in clients}
    capacity = sum(headrooms.values())
    if capacity < gap:
        raise ConfigurationError(
            f"cannot add {gap:.3f} utilization: only {capacity:.3f} head-room"
        )
    # Split the gap with UUniFast, then clamp to head-room by rescaling.
    shares = uunifast_discard(rng, len(clients), gap, cap=1.0)
    result: dict[int, TaskSet] = {}
    carry = 0.0
    for client, share in zip(clients, shares):
        share += carry
        carry = 0.0
        room = headrooms[client]
        if share > room:
            carry = share - room
            share = room
        if share < 1e-4:
            result[client] = TaskSet()
            continue
        taskset = generate_transaction_taskset(
            rng,
            tasks_per_client,
            share,
            wcet_max=wcet_max,
            period_min=period_min,
            period_max=period_max,
        )
        result[client] = TaskSet(
            [
                PeriodicTask(
                    period=t.period,
                    wcet=t.wcet,
                    name=f"intf{client}.{i}",
                    client_id=client,
                )
                for i, t in enumerate(taskset)
            ]
        )
    if carry > 1e-3:
        raise ConfigurationError(
            f"interference placement left {carry:.3f} utilization unassigned"
        )
    return result


#: DNN inference streams for the hardware accelerators: (model, period,
#: transactions per inference).  Periods/demands model SqueezeNet-scale
#: weight+activation traffic for small-image classification.
DNN_STREAMS: tuple[tuple[str, int, int], ...] = (
    ("squeezenet-mnist", 3000, 60),
    ("squeezenet-emnist", 4200, 80),
    ("squeezenet-cifar10", 6500, 120),
)


def dnn_interference_taskset(client_id: int | None = None) -> TaskSet:
    """The accelerator's inference streams as periodic burst tasks."""
    return TaskSet(
        [
            PeriodicTask(period=period, wcet=demand, name=name, client_id=client_id)
            for name, period, demand in DNN_STREAMS
        ]
    )
