"""Automotive case-study task sets (paper Sec. 6.4).

The paper runs (i) ten *safety* tasks from the Renesas automotive use
case database (CRC, RSA32, core self-test, …) and (ii) ten *function*
tasks from the EEMBC AutoBench suite (FFT, speed calculation, …).  We
cannot redistribute those suites; what the interconnect sees, however,
is only each task's *memory-transaction profile*: how many transactions
a job issues and how often.  Each catalogue entry below encodes a
representative profile for the named kernel (period in transaction
slots; demand in transactions per job), sized so the twenty application
tasks together load the interconnect lightly (the paper's ~30%
processor utilization maps to a much smaller memory utilization), with
interference tasks supplying the swept load.

Periods are harmonically diverse and co-prime-ish to avoid accidental
synchronization artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.tasks.task import PeriodicTask
from repro.tasks.taskset import TaskSet


@dataclass(frozen=True)
class WorkloadProfile:
    """Memory-transaction profile of one named benchmark kernel."""

    name: str
    category: str  # "safety" | "function"
    period: int  # transaction slots between releases (= deadline)
    transactions_per_job: int

    def as_task(self, client_id: int | None = None) -> PeriodicTask:
        return PeriodicTask(
            period=self.period,
            wcet=self.transactions_per_job,
            name=self.name,
            client_id=client_id,
        )


#: Renesas-style automotive safety tasks (10)
SAFETY_PROFILES: tuple[WorkloadProfile, ...] = (
    WorkloadProfile("crc32", "safety", period=500, transactions_per_job=6),
    WorkloadProfile("rsa32", "safety", period=2100, transactions_per_job=18),
    WorkloadProfile("core-self-test", "safety", period=4700, transactions_per_job=30),
    WorkloadProfile("watchdog-refresh", "safety", period=250, transactions_per_job=2),
    WorkloadProfile("can-gateway", "safety", period=640, transactions_per_job=5),
    WorkloadProfile("airbag-monitor", "safety", period=330, transactions_per_job=3),
    WorkloadProfile("abs-control", "safety", period=410, transactions_per_job=4),
    WorkloadProfile("battery-monitor", "safety", period=1700, transactions_per_job=9),
    WorkloadProfile("lane-keep-assist", "safety", period=820, transactions_per_job=10),
    WorkloadProfile("e-steering-check", "safety", period=1150, transactions_per_job=8),
)

#: EEMBC AutoBench-style function tasks (10)
FUNCTION_PROFILES: tuple[WorkloadProfile, ...] = (
    WorkloadProfile("fft", "function", period=1300, transactions_per_job=16),
    WorkloadProfile("speed-calc", "function", period=290, transactions_per_job=2),
    WorkloadProfile("fir-filter", "function", period=530, transactions_per_job=5),
    WorkloadProfile("matrix-arith", "function", period=1900, transactions_per_job=14),
    WorkloadProfile("table-lookup", "function", period=710, transactions_per_job=6),
    WorkloadProfile("angle-to-time", "function", period=370, transactions_per_job=3),
    WorkloadProfile("can-remote-data", "function", period=930, transactions_per_job=7),
    WorkloadProfile("pointer-chase", "function", period=2500, transactions_per_job=12),
    WorkloadProfile("pwm-control", "function", period=430, transactions_per_job=3),
    WorkloadProfile("idct", "function", period=1500, transactions_per_job=11),
)

ALL_PROFILES: tuple[WorkloadProfile, ...] = SAFETY_PROFILES + FUNCTION_PROFILES


def safety_taskset() -> TaskSet:
    """The ten automotive safety tasks."""
    return TaskSet([p.as_task() for p in SAFETY_PROFILES])


def function_taskset() -> TaskSet:
    """The ten automotive function tasks."""
    return TaskSet([p.as_task() for p in FUNCTION_PROFILES])


def case_study_taskset() -> TaskSet:
    """All twenty application tasks of the case study."""
    return TaskSet([p.as_task() for p in ALL_PROFILES])


def assign_case_study(n_processors: int) -> dict[int, TaskSet]:
    """Distribute the twenty tasks over ``n_processors`` round-robin.

    Matches the paper's configuration where the application tasks are
    spread across the processor clients (with 64 cores most cores carry
    only interference load).
    """
    if n_processors < 1:
        raise ConfigurationError("need at least one processor")
    assignment: dict[int, TaskSet] = {c: TaskSet() for c in range(n_processors)}
    for index, profile in enumerate(ALL_PROFILES):
        client = index % n_processors
        assignment[client].add(profile.as_task(client_id=client))
    return assignment


def profile_by_name(name: str) -> WorkloadProfile:
    """Look a profile up by its kernel name."""
    for profile in ALL_PROFILES:
        if profile.name == name:
            return profile
    raise ConfigurationError(f"unknown workload profile {name!r}")
