"""Avionics workload catalogue (extension beyond the paper's case study).

The paper evaluates on automotive tasks; real-time memory interconnects
target avionics just as much (the BlueTree lineage grew out of
mixed-criticality avionics work).  This catalogue provides an
IMA-flavored workload: partitioned flight-control, navigation and
cabin functions with DAL (design-assurance-level) annotations, plus a
builder that maps partitions onto clients — one partition per client,
the way an ARINC-653 integrator would segregate them.

Profiles follow the same memory-transaction model as the automotive
catalogue: period (= deadline) in transaction slots, transactions per
job.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.tasks.task import PeriodicTask
from repro.tasks.taskset import TaskSet

#: design assurance levels, most critical first
DAL_LEVELS = ("A", "B", "C", "D", "E")


@dataclass(frozen=True)
class AvionicsProfile:
    """One avionics function's memory-transaction profile."""

    name: str
    partition: str
    dal: str
    period: int
    transactions_per_job: int

    def __post_init__(self) -> None:
        if self.dal not in DAL_LEVELS:
            raise ConfigurationError(
                f"unknown DAL {self.dal!r}; expected one of {DAL_LEVELS}"
            )

    def as_task(self, client_id: int | None = None) -> PeriodicTask:
        return PeriodicTask(
            period=self.period,
            wcet=self.transactions_per_job,
            name=self.name,
            client_id=client_id,
        )


#: flight-control partition: highest rates, highest criticality
FLIGHT_CONTROL: tuple[AvionicsProfile, ...] = (
    AvionicsProfile("attitude-control", "flight-control", "A", 125, 3),
    AvionicsProfile("rate-gyro-fusion", "flight-control", "A", 250, 5),
    AvionicsProfile("actuator-command", "flight-control", "A", 125, 2),
    AvionicsProfile("air-data-computer", "flight-control", "A", 500, 6),
)

#: navigation partition
NAVIGATION: tuple[AvionicsProfile, ...] = (
    AvionicsProfile("gps-solution", "navigation", "B", 1000, 8),
    AvionicsProfile("ins-integration", "navigation", "B", 500, 6),
    AvionicsProfile("terrain-awareness", "navigation", "B", 2000, 14),
    AvionicsProfile("flight-plan-update", "navigation", "C", 5000, 20),
)

#: surveillance / communication partition
SURVEILLANCE: tuple[AvionicsProfile, ...] = (
    AvionicsProfile("tcas-tracking", "surveillance", "B", 1000, 9),
    AvionicsProfile("transponder-reply", "surveillance", "B", 500, 3),
    AvionicsProfile("weather-radar", "surveillance", "C", 4000, 24),
)

#: cabin / utility partition: lowest criticality
CABIN: tuple[AvionicsProfile, ...] = (
    AvionicsProfile("cabin-pressure", "cabin", "C", 2000, 5),
    AvionicsProfile("entertainment-feed", "cabin", "E", 800, 10),
    AvionicsProfile("galley-management", "cabin", "D", 6000, 12),
)

ALL_AVIONICS: tuple[AvionicsProfile, ...] = (
    FLIGHT_CONTROL + NAVIGATION + SURVEILLANCE + CABIN
)

PARTITIONS: tuple[str, ...] = (
    "flight-control",
    "navigation",
    "surveillance",
    "cabin",
)


def partition_taskset(partition: str, client_id: int | None = None) -> TaskSet:
    """All functions of one partition as a task set."""
    profiles = [p for p in ALL_AVIONICS if p.partition == partition]
    if not profiles:
        raise ConfigurationError(
            f"unknown partition {partition!r}; expected one of {PARTITIONS}"
        )
    return TaskSet([p.as_task(client_id=client_id) for p in profiles])


def assign_partitions(n_clients: int) -> dict[int, TaskSet]:
    """Map one partition per client (spatial segregation).

    With more clients than partitions the remaining clients idle (to be
    loaded with interference or other applications); with fewer, it is
    a configuration error — an IMA integrator never co-hosts
    partitions of different DALs on one core without time partitioning.
    """
    if n_clients < len(PARTITIONS):
        raise ConfigurationError(
            f"need at least {len(PARTITIONS)} clients to segregate "
            f"partitions, got {n_clients}"
        )
    return {
        client: partition_taskset(partition, client_id=client)
        for client, partition in enumerate(PARTITIONS)
    }


def tasks_at_or_above(dal: str) -> TaskSet:
    """Every function at the given DAL or more critical."""
    if dal not in DAL_LEVELS:
        raise ConfigurationError(f"unknown DAL {dal!r}")
    cutoff = DAL_LEVELS.index(dal)
    return TaskSet(
        [
            p.as_task()
            for p in ALL_AVIONICS
            if DAL_LEVELS.index(p.dal) <= cutoff
        ]
    )
