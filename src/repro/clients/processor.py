"""Processor clients for the case study (paper Sec. 6.4).

A :class:`ProcessorClient` is a traffic generator whose task set mixes
*application* tasks (the monitored automotive safety / function tasks)
with *interference* tasks added to reach a target utilization.  Only
application tasks count toward the success ratio, matching the paper's
setup where interference tasks merely load the system.
"""

from __future__ import annotations

import random

from repro.clients.traffic_generator import TrafficGenerator
from repro.tasks.taskset import TaskSet


class ProcessorClient(TrafficGenerator):
    """A fully featured processor core modelled by its memory traffic."""

    def __init__(
        self,
        client_id: int,
        application_tasks: TaskSet,
        interference_tasks: TaskSet | None = None,
        rng: random.Random | None = None,
        pending_capacity: int = 256,
        random_phases: bool = False,
        write_ratio: float = 0.25,
    ) -> None:
        interference = interference_tasks if interference_tasks is not None else TaskSet()
        combined = application_tasks.merged_with(interference)
        monitored = {task.name for task in application_tasks}
        super().__init__(
            client_id=client_id,
            taskset=combined,
            pending_capacity=pending_capacity,
            rng=rng,
            random_phases=random_phases,
            write_ratio=write_ratio,
            monitored_tasks=monitored,
        )
        self.application_tasks = application_tasks
        self.interference_tasks = interference

    @property
    def application_utilization(self) -> float:
        return self.application_tasks.utilization_float

    @property
    def total_utilization(self) -> float:
        return self.taskset.utilization_float
