"""Client models: traffic generators, processors, DNN accelerators."""

from repro.clients.traffic_generator import QUEUE_POLICIES, JobRecord, TrafficGenerator
from repro.clients.processor import ProcessorClient
from repro.clients.accelerator import AcceleratorClient, dnn_inference_task

__all__ = [
    "QUEUE_POLICIES",
    "JobRecord",
    "TrafficGenerator",
    "ProcessorClient",
    "AcceleratorClient",
    "dnn_inference_task",
]
