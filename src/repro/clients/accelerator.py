"""DNN hardware-accelerator clients (paper Sec. 6: two DNN HAs).

An accelerator streams inference workloads: each periodic inference
job fetches a large, contiguous burst of data (weights + activations),
making the HA the most memory-intensive client in the system.  The
paper enforces a bandwidth cap on the HA (1/#clients of the memory
bandwidth) because not all baselines support reservations; the
``bandwidth_cap`` parameter reproduces that throttle at the source by
spacing the HA's injections.
"""

from __future__ import annotations

import heapq
import random

from repro.clients.traffic_generator import TrafficGenerator
from repro.errors import ConfigurationError
from repro.tasks.task import PeriodicTask
from repro.tasks.taskset import TaskSet


def dnn_inference_task(
    name: str, period: int, requests_per_inference: int, client_id: int | None = None
) -> PeriodicTask:
    """A periodic inference job expressed as a memory-transaction task."""
    return PeriodicTask(
        period=period,
        wcet=requests_per_inference,
        name=name,
        client_id=client_id,
    )


class AcceleratorClient(TrafficGenerator):
    """A DNN hardware accelerator issuing streaming burst traffic."""

    def __init__(
        self,
        client_id: int,
        inference_tasks: TaskSet,
        bandwidth_cap: float = 1.0,
        rng: random.Random | None = None,
        pending_capacity: int = 1024,
    ) -> None:
        if not 0.0 < bandwidth_cap <= 1.0:
            raise ConfigurationError(
                f"bandwidth cap {bandwidth_cap} outside (0, 1]"
            )
        super().__init__(
            client_id=client_id,
            taskset=inference_tasks,
            pending_capacity=pending_capacity,
            rng=rng,
            write_ratio=0.0,  # inference streams are read-dominated
        )
        self.bandwidth_cap = bandwidth_cap
        # Inject at most one request per ceil(1/cap) cycles.
        self._inject_interval = max(1, round(1.0 / bandwidth_cap))
        self._last_inject = -(10**9)

    def tick(self, cycle: int, inject) -> None:  # noqa: ANN001 - hook
        self._release_due_jobs(cycle)
        if not self._pending:
            return
        if cycle - self._last_inject < self._inject_interval:
            return
        _, request = self._pending[0]
        if inject(request, cycle):
            heapq.heappop(self._pending)
            self._last_inject = cycle

    # -- quiescence ------------------------------------------------------------
    def is_quiescent(self) -> bool:
        """The throttle makes even a backlogged HA quiescent: between
        injection opportunities a tick only catches up job releases,
        which is exact after a leap (releases use stored cycles)."""
        return True

    def next_activity_cycle(self, cycle: int) -> int | None:
        """Next injection opportunity or job release, whichever is first.

        Releases must land on their exact cycles (request ids are
        assigned globally in release order, and they tie-break EDF
        arbitration), so the release heap always bounds the leap.  When
        injection eligibility has already arrived — e.g. the port is
        exerting backpressure — this returns a cycle in the past and
        the engine simply does not leap.
        """
        earliest: int | None = None
        if self._pending:
            earliest = self._last_inject + self._inject_interval
        if self._release_heap:
            release = self._release_heap[0][0]
            if earliest is None or release < earliest:
                earliest = release
        return earliest
