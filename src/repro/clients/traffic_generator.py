"""Traffic-generator clients (paper Sec. 6.3).

A traffic generator replays a periodic task set as memory traffic
without processing any data: each job of task ``(T, C)`` releases a
burst of ``C`` transactions (the task's memory demand in transaction
time units) with the job's absolute deadline.  Pending transactions are
issued to the interconnect in EDF order, one per cycle — the per-client
"fixed priority scheduler, with the request priority assigned using
GEDF" of the paper's setup.

Job bookkeeping supports the case study (Fig. 7): a *job* succeeds when
every one of its transactions completes by its deadline, and a trial
succeeds when no monitored task misses any job.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.memory.request import MemoryRequest, RequestKind
from repro.tasks.taskset import TaskSet


@dataclass
class JobRecord:
    """Completion tracking for one released job."""

    task_name: str
    release: int
    deadline: int
    outstanding: int
    monitored: bool
    last_completion: int = -1
    dropped: int = 0

    @property
    def finished(self) -> bool:
        return self.outstanding == 0

    @property
    def met_deadline(self) -> bool:
        return self.finished and self.dropped == 0 and self.last_completion <= self.deadline


#: client-side issue-order policies: how the pending queue is sorted
QUEUE_POLICIES = ("edf", "fifo", "rm")


class TrafficGenerator:
    """A client that converts a periodic task set into memory requests.

    ``queue_policy`` selects the *issue order* of the client's own
    pending transactions: ``edf`` (the paper's GEDF assignment,
    default), ``fifo`` (release order), or ``rm`` (rate-monotonic: the
    shortest-period task's transactions first).  The deadline carried
    by each transaction — what the interconnects arbitrate on — is
    unaffected.
    """

    #: address stride between consecutive requests of one burst
    BURST_STRIDE = 64

    def __init__(
        self,
        client_id: int,
        taskset: TaskSet,
        pending_capacity: int = 256,
        rng: random.Random | None = None,
        random_phases: bool = False,
        write_ratio: float = 0.0,
        monitored_tasks: set[str] | None = None,
        address_base: int | None = None,
        queue_policy: str = "edf",
        criticality: dict[str, int] | None = None,
    ) -> None:
        if client_id < 0:
            raise ConfigurationError(f"client id must be >= 0, got {client_id}")
        if pending_capacity <= 0:
            raise ConfigurationError("pending capacity must be positive")
        if not 0.0 <= write_ratio <= 1.0:
            raise ConfigurationError(f"write ratio {write_ratio} outside [0, 1]")
        if queue_policy not in QUEUE_POLICIES:
            raise ConfigurationError(
                f"unknown queue policy {queue_policy!r}; "
                f"expected one of {QUEUE_POLICIES}"
            )
        self.queue_policy = queue_policy
        # Optional criticality-aware shedding (higher value = more
        # critical): on queue overflow, a new transaction may evict the
        # least critical pending one instead of being dropped itself.
        self.criticality = criticality
        self.client_id = client_id
        self.taskset = taskset
        self.pending_capacity = pending_capacity
        self.rng = rng if rng is not None else random.Random(client_id)
        self.write_ratio = write_ratio
        self.monitored_tasks = monitored_tasks
        # Give each client its own 16 MB window so DRAM banks/rows differ.
        self.address_base = (
            address_base if address_base is not None else client_id * (1 << 24)
        )
        # (next_release, task_index, job_index) min-heap
        self._release_heap: list[tuple[int, int, int]] = []
        for index, task in enumerate(taskset):
            phase = self.rng.randrange(task.period) if random_phases else 0
            heapq.heappush(self._release_heap, (phase, index, 0))
        # pending transactions in EDF order
        self._pending: list[tuple[tuple[int, int], MemoryRequest]] = []
        self.jobs: list[JobRecord] = []
        self._job_of_request: dict[int, JobRecord] = {}
        self.released_jobs = 0
        self.released_requests = 0
        self.dropped_requests = 0
        # Per-task worst observed response and worst blocking, updated
        # on every completion — the isolation harness compares these
        # against the analytical bounds (repro.faults.verify).
        self.max_response_by_task: dict[str, int] = {}
        self.max_blocking = 0

    def _queue_key(self, request: MemoryRequest, task) -> tuple[int, int]:  # noqa: ANN001
        """Pending-queue ordering key under the configured policy."""
        if self.queue_policy == "edf":
            return request.priority_key
        if self.queue_policy == "fifo":
            return (request.release_cycle, request.rid)
        # rm: shortest period first, ties by id
        return (task.period, request.rid)

    # -- releases ------------------------------------------------------------
    def _release_due_jobs(self, cycle: int) -> None:
        heap = self._release_heap
        while heap and heap[0][0] <= cycle:
            release, task_index, job_index = heapq.heappop(heap)
            task = self.taskset[task_index]
            heapq.heappush(
                heap, (release + task.period, task_index, job_index + 1)
            )
            deadline = release + task.deadline
            monitored = (
                self.monitored_tasks is None or task.name in self.monitored_tasks
            )
            job = JobRecord(
                task_name=task.name,
                release=release,
                deadline=deadline,
                outstanding=task.wcet,
                monitored=monitored,
            )
            self.jobs.append(job)
            self.released_jobs += 1
            base = self.address_base + (task_index << 16)
            for burst_index in range(task.wcet):
                kind = (
                    RequestKind.WRITE
                    if self.rng.random() < self.write_ratio
                    else RequestKind.READ
                )
                request = MemoryRequest(
                    client_id=self.client_id,
                    release_cycle=release,
                    absolute_deadline=deadline,
                    kind=kind,
                    address=base + burst_index * self.BURST_STRIDE,
                    task_name=task.name,
                )
                self.released_requests += 1
                if len(self._pending) >= self.pending_capacity:
                    if not self._try_evict_for(task.name):
                        # Queue overflow: the transaction can never make
                        # its deadline; count it against the job.
                        self.dropped_requests += 1
                        job.dropped += 1
                        job.outstanding -= 1
                        continue
                heapq.heappush(
                    self._pending, (self._queue_key(request, task), request)
                )
                self._job_of_request[request.rid] = job

    def _try_evict_for(self, task_name: str) -> bool:
        """Criticality-aware shedding: make room for a more critical
        transaction by dropping the least critical pending one.

        Returns True when a slot was freed.  Without a criticality map
        (the default) no eviction happens — the newest transaction is
        the one dropped, matching plain overflow semantics.
        """
        if self.criticality is None or not self._pending:
            return False
        new_level = self.criticality.get(task_name, 0)
        victim_index = min(
            range(len(self._pending)),
            key=lambda i: (
                self.criticality.get(self._pending[i][1].task_name, 0),
                -self._pending[i][1].absolute_deadline,
            ),
        )
        victim = self._pending[victim_index][1]
        if self.criticality.get(victim.task_name, 0) >= new_level:
            return False  # nothing less critical to shed
        self._pending.pop(victim_index)
        heapq.heapify(self._pending)
        victim_job = self._job_of_request.pop(victim.rid, None)
        if victim_job is not None:
            victim_job.dropped += 1
            victim_job.outstanding -= 1
        self.dropped_requests += 1
        return True

    # -- issue ----------------------------------------------------------------
    def tick(
        self,
        cycle: int,
        inject,  # noqa: ANN001 - hook
        max_injections: int = 1,
        probe_limit: int | None = None,
    ) -> None:
        """Release due jobs, then offer transactions in EDF order.

        ``inject`` is ``interconnect.try_inject``.  The default (one
        injection, one probe) models a single memory port: the head
        request is offered and retried next cycle if refused.  Clients
        of multi-channel systems pass ``max_injections`` = number of
        channels and a larger ``probe_limit`` so a blocked head does not
        starve requests bound for other channels.
        """
        self._release_due_jobs(cycle)
        if not self._pending:
            return
        probes = probe_limit if probe_limit is not None else max_injections
        injected = 0
        skipped: list[tuple[tuple[int, int], MemoryRequest]] = []
        while self._pending and injected < max_injections and probes > 0:
            entry = heapq.heappop(self._pending)
            if inject(entry[1], cycle):
                injected += 1
            else:
                skipped.append(entry)
                probes -= 1
        for entry in skipped:
            heapq.heappush(self._pending, entry)

    # -- fault hook ------------------------------------------------------------
    def inject_rogue_burst(
        self,
        cycle: int,
        count: int,
        deadline_slack: int,
        task_name: str = "!rogue",
    ) -> int:
        """Misbehave: release ``count`` contract-violating transactions.

        The fault orchestrator's rogue-client model — transactions
        beyond the declared task set, released straight into the
        pending queue with a tight absolute deadline (``cycle +
        deadline_slack``).  They carry no :class:`JobRecord`, so the
        client's monitored job statistics keep describing its *declared*
        workload; ``released_requests`` does count them (conservation).
        Overflowing transactions are dropped like any other release.
        Returns the number actually queued.
        """
        if count < 1:
            raise ConfigurationError(f"burst count must be >= 1, got {count}")
        if deadline_slack < 1:
            raise ConfigurationError(
                f"deadline slack must be >= 1, got {deadline_slack}"
            )
        injected = 0
        base = self.address_base + (0xF << 20)
        for index in range(count):
            request = MemoryRequest(
                client_id=self.client_id,
                release_cycle=cycle,
                absolute_deadline=cycle + deadline_slack,
                address=base + index * self.BURST_STRIDE,
                task_name=task_name,
            )
            self.released_requests += 1
            if len(self._pending) >= self.pending_capacity:
                self.dropped_requests += 1
                continue
            if self.queue_policy == "edf":
                key = request.priority_key
            elif self.queue_policy == "fifo":
                key = (request.release_cycle, request.rid)
            else:  # rm: a contract violator masquerades as the hottest task
                key = (1, request.rid)
            heapq.heappush(self._pending, (key, request))
            injected += 1
        return injected

    # -- scenario hooks ---------------------------------------------------------
    def scenario_join(self, cycle: int, tasks: TaskSet) -> None:
        """Install additional tasks mid-run, first releases phased at ``cycle``.

        The :class:`~repro.scenarios.driver.ScenarioDriver`'s
        ``CLIENT_JOIN`` hook.  Existing tasks, queued transactions and
        job statistics are untouched; the new tasks release strictly
        periodically from the join cycle on.  The declared task set is
        replaced copy-on-write — the caller's TaskSet object must not
        observe the join (it may seed another simulation).
        """
        merged = TaskSet(list(self.taskset))
        for task in tasks:
            index = len(merged)
            merged.add(task)
            heapq.heappush(self._release_heap, (cycle, index, 0))
        self.taskset = merged

    def scenario_leave(self, cycle: int) -> None:
        """Power the client down: no further releases, queued work withdrawn.

        Transactions already inside the fabric complete normally (their
        responses are still accounted), but queued-not-yet-injected ones
        are withdrawn (counted as drops, conservation-wise) and the
        client's unfinished jobs stop being monitored — a departed
        client's deadlines have no observer.
        """
        del cycle  # the leave takes effect immediately
        self._release_heap.clear()
        # Unmonitor before withdrawing: withdrawal drives a job's
        # outstanding count to zero, which would make it look finished
        # (and judged as missed via its drops) instead of abandoned.
        self._abandon_unfinished_jobs()
        self._withdraw_queued()
        self.taskset = TaskSet()

    def scenario_retask(self, cycle: int, taskset: TaskSet) -> None:
        """Replace the declared task set (rate change / mode switch).

        The old mode's queued work is abandoned exactly like a leave —
        a mode switch restarts the client's workload — then the new
        set's releases start phased at ``cycle``.
        """
        self._release_heap.clear()
        self._abandon_unfinished_jobs()
        self._withdraw_queued()
        self.taskset = TaskSet(list(taskset))
        for index, _task in enumerate(self.taskset):
            heapq.heappush(self._release_heap, (cycle, index, 0))

    def _withdraw_queued(self) -> None:
        """Drop every pending-but-uninjected transaction (conservation-safe)."""
        for _key, request in self._pending:
            job = self._job_of_request.pop(request.rid, None)
            if job is not None:
                job.dropped += 1
                job.outstanding -= 1
            self.dropped_requests += 1
        self._pending.clear()

    def _abandon_unfinished_jobs(self) -> None:
        """Stop judging jobs the departing/switching workload abandons."""
        for job in self.jobs:
            if not job.finished:
                job.monitored = False

    # -- completion ------------------------------------------------------------
    def on_response(self, request: MemoryRequest) -> None:
        """Account a completed transaction against its job."""
        response = request.response_time
        if response > self.max_response_by_task.get(request.task_name, -1):
            self.max_response_by_task[request.task_name] = response
        if request.blocking_cycles > self.max_blocking:
            self.max_blocking = request.blocking_cycles
        job = self._job_of_request.pop(request.rid, None)
        if job is None:
            return
        job.outstanding -= 1
        job.last_completion = max(job.last_completion, request.complete_cycle)

    # -- quiescence ------------------------------------------------------------
    def is_quiescent(self) -> bool:
        """True while the client has nothing to offer the interconnect.

        With an empty pending queue a tick only checks the release heap,
        a no-op until the next release — which
        :meth:`next_activity_cycle` declares.  A non-empty queue means
        the client retries injection every cycle (it may be blocked by
        backpressure), so it is never quiescent then.
        """
        return not self._pending

    def next_activity_cycle(self, cycle: int) -> int | None:
        """The next job release.  Declared even when injection is
        blocked: request ids are allocated globally in release order
        (and tie-break EDF), so releases must land on exact cycles."""
        if self._release_heap:
            return self._release_heap[0][0]
        return None

    # -- outcome -------------------------------------------------------------
    def monitored_job_misses(self, horizon: int) -> int:
        """Monitored jobs that missed (or could not finish by) their deadline.

        Only jobs whose deadline falls within the simulated horizon are
        judged, so truncation at the end of a trial does not create
        phantom misses.
        """
        misses = 0
        for job in self.jobs:
            if not job.monitored or job.deadline > horizon:
                continue
            if not job.met_deadline:
                misses += 1
        return misses

    def monitored_jobs_judged(self, horizon: int) -> int:
        return sum(
            1 for job in self.jobs if job.monitored and job.deadline <= horizon
        )

    @property
    def pending_count(self) -> int:
        return len(self._pending)
