"""GSMTree — the globally arbitrated memory tree (Gomony et al., DATE
2015 / IEEE TC 2016; paper Sec. 2 and 6).

GSMTree keeps the distributed binary-tree datapath but arbitrates
*globally* with Time Division Multiplexing: memory-service slots are
assigned to clients by a fixed frame, and a request may only reach the
memory when its owner's slot is current.  Tree nodes themselves
forward first-come-first-served (work-conserving inside the tree); the
TDM gate at the root enforces the reservation.

Two reservation strategies from the paper's setup:

* **GSMTree-TDM** — equal bandwidth for all clients (one slot each per
  frame).
* **GSMTree-FBSP** — frame-based static priority with slots
  proportional to each client's maximum workload (utilization).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

from repro.errors import ConfigurationError
from repro.interconnects.mux_tree import MuxNode, MuxTreeInterconnect
from repro.memory.request import MemoryRequest
from repro.topology import NodeId


class FcfsNode(MuxNode):
    """2-to-1 mux forwarding the oldest head (FCFS; ties favour port 0)."""

    def choose_port(self, cycle: int) -> int | None:
        left, right = self.fifos
        if left and right:
            return 0 if left[0].rid <= right[0].rid else 1
        if left:
            return 0
        if right:
            return 1
        return None


def build_tdm_frame(n_clients: int) -> list[int]:
    """Equal-share frame: one slot per client, round-robin."""
    if n_clients <= 0:
        raise ConfigurationError("need at least one client")
    return list(range(n_clients))


def build_fbsp_frame(
    weights: Sequence[float | Fraction], min_frame: int | None = None
) -> list[int]:
    """Workload-proportional frame via largest-remainder apportionment.

    ``weights[c]`` is client ``c``'s workload (e.g. utilization).  Every
    client receives at least one slot; the frame length defaults to
    ``max(n_clients, min_frame)``.  Slots are spread round-robin-style
    (clients with more slots appear multiple times, interleaved) to
    avoid long droughts.
    """
    n = len(weights)
    if n == 0:
        raise ConfigurationError("need at least one weight")
    if any(w < 0 for w in weights):
        raise ConfigurationError("weights must be non-negative")
    frame_len = max(n, min_frame or 0)
    total = sum(weights)
    if total == 0:
        return build_tdm_frame(n)[:frame_len] or list(range(n))
    # Largest remainder with a one-slot floor per client.
    exact = [float(w) / float(total) * frame_len for w in weights]
    counts = [max(1, int(e)) for e in exact]
    while sum(counts) > frame_len:
        # Shrink the most over-allocated client (but keep the floor).
        candidates = [i for i in range(n) if counts[i] > 1]
        if not candidates:
            break
        victim = max(candidates, key=lambda i: counts[i] - exact[i])
        counts[victim] -= 1
    remainders = sorted(
        range(n), key=lambda i: exact[i] - int(exact[i]), reverse=True
    )
    index = 0
    while sum(counts) < frame_len:
        counts[remainders[index % n]] += 1
        index += 1
    # Interleave: repeatedly emit one slot per client that still owes slots.
    frame: list[int] = []
    pending = list(counts)
    while len(frame) < sum(counts):
        for client in range(n):
            if pending[client] > 0:
                frame.append(client)
                pending[client] -= 1
    return frame


class TdmRootNode(FcfsNode):
    """The root stage owning the global TDM schedule.

    Each slot, the root's schedule buffer looks for a request of the
    slot's owner anywhere in its input buffers and forwards it;
    when the owner has nothing pending, the slot is reclaimed
    work-conservingly for the oldest request (Gomony et al.'s slack
    reclamation), so reserved-but-idle bandwidth is not wasted.
    """

    def __init__(self, node: NodeId, fifo_capacity: int, owner_of):  # noqa: ANN001
        super().__init__(node, fifo_capacity)
        self._owner_of = owner_of

    def tick(self, cycle: int) -> None:
        owner = self._owner_of(cycle)
        # Prefer the slot owner's oldest request, wherever it is queued.
        chosen_fifo = None
        chosen = None
        for fifo in self.fifos:
            for request in fifo:
                if request.client_id == owner and (
                    chosen is None or request.rid < chosen.rid
                ):
                    chosen_fifo, chosen = fifo, request
        if chosen is None:
            # Slack reclamation: fall back to plain FCFS.
            super().tick(cycle)
            return
        if self.forward is not None and self.forward(chosen, cycle):
            chosen_fifo.remove(chosen)
            self.forwarded += 1
            self.on_forwarded(0, chosen)


class GsmTreeInterconnect(MuxTreeInterconnect):
    """Binary tree, globally arbitrated by a TDM frame at the root."""

    name = "GSMTree-TDM"

    #: max injection credits a client can bank (bounds burst admission)
    CREDIT_CAP = 4

    def __init__(
        self,
        n_clients: int,
        fifo_capacity: int = 4,
        frame: Sequence[int] | None = None,
        slot_cycles: int = 1,
    ) -> None:
        super().__init__(n_clients, fifo_capacity)
        if slot_cycles < 1:
            raise ConfigurationError("slot length must be >= 1 cycle")
        self.slot_cycles = slot_cycles
        self.frame: list[int] = (
            list(frame) if frame is not None else build_tdm_frame(n_clients)
        )
        if not self.frame:
            raise ConfigurationError("TDM frame cannot be empty")
        for owner in self.frame:
            if not 0 <= owner < n_clients:
                raise ConfigurationError(f"frame slot owner {owner} out of range")
        # The global schedule admits traffic at the leaves: a client may
        # inject one request per owned slot (banked up to CREDIT_CAP).
        # This is the bandwidth reservation that decouples clients —
        # and that wastes capacity when reservations mismatch demand.
        self._credits = [float(self.CREDIT_CAP)] * n_clients
        self._last_credit_cycle = -1
        # Per-owner slot counts of one full frame, for the analytic
        # credit catch-up after long idle gaps (quiescence leaps).
        self._frame_counts = [0] * n_clients
        for owner in self.frame:
            self._frame_counts[owner] += 1

    def make_node(self, node_id: NodeId) -> MuxNode:
        if node_id == (0, 0):
            return TdmRootNode(node_id, self.fifo_capacity, self.slot_owner)
        return FcfsNode(node_id, self.fifo_capacity)

    def slot_owner(self, cycle: int) -> int:
        return self.frame[(cycle // self.slot_cycles) % len(self.frame)]

    def _refresh_credits(self, cycle: int) -> None:
        """Grant each slot owner one injection credit (idempotent per cycle).

        Credits are granted lazily at injection time, so the grant loop
        naturally absorbs idle gaps (including quiescence leaps).  Long
        gaps take the analytic path: because credits saturate at the cap
        and no injection can occur inside the gap, granting is
        order-free within it — ``min(cap, credits + slots_owned)`` per
        client reproduces the cycle-by-cycle loop exactly.
        """
        if cycle == self._last_credit_cycle:
            return
        start = self._last_credit_cycle + 1
        if cycle - start < 2 * len(self.frame) * self.slot_cycles:
            for c in range(start, cycle + 1):
                if c % self.slot_cycles == 0:
                    owner = self.slot_owner(c)
                    if self._credits[owner] < self.CREDIT_CAP:
                        self._credits[owner] += 1
            self._last_credit_cycle = cycle
            return
        # Analytic catch-up: count the slot boundaries each owner got in
        # (last_credit_cycle, cycle] without walking every cycle.
        first_slot = (start + self.slot_cycles - 1) // self.slot_cycles
        last_slot = cycle // self.slot_cycles
        n_slots = last_slot - first_slot + 1
        frame_len = len(self.frame)
        full_frames, remainder = divmod(n_slots, frame_len)
        grants = [count * full_frames for count in self._frame_counts]
        base = first_slot % frame_len
        for offset in range(remainder):
            grants[self.frame[(base + offset) % frame_len]] += 1
        for client, granted in enumerate(grants):
            if granted and self._credits[client] < self.CREDIT_CAP:
                self._credits[client] = min(
                    float(self.CREDIT_CAP), self._credits[client] + granted
                )
        self._last_credit_cycle = cycle

    def try_inject(self, request, cycle: int) -> bool:  # noqa: ANN001
        self._refresh_credits(cycle)
        client = request.client_id
        if self._credits[client] < 1:
            return False
        if super().try_inject(request, cycle):
            self._credits[client] -= 1
            return True
        return False

    def injection_blocked_until(self, client_id: int, cycle: int) -> int | None:
        """Full leaf FIFO (inherited), or credit starvation.

        A credit-starved client is refused, side-effect-free, until its
        next owned slot boundary (where the lazy refresh grants it a
        credit); advancing the refresh here is safe because grants are
        order-free while no injection can happen.
        """
        blocked = super().injection_blocked_until(client_id, cycle)
        if blocked is not None:
            return blocked
        self._refresh_credits(cycle)
        if self._credits[client_id] >= 1:
            return None
        # Boundaries <= cycle are already granted by the refresh above;
        # scan one frame of strictly later slot boundaries.
        frame_len = len(self.frame)
        first_slot = cycle // self.slot_cycles + 1
        for offset in range(frame_len):
            slot = first_slot + offset
            if self.frame[slot % frame_len] == client_id:
                return slot * self.slot_cycles
        return -1  # not in the frame: never granted a credit


def gsmtree_tdm(n_clients: int, fifo_capacity: int = 4) -> GsmTreeInterconnect:
    """GSMTree with equal bandwidth reservation (paper's GSMTree-TDM)."""
    interconnect = GsmTreeInterconnect(n_clients, fifo_capacity)
    interconnect.name = "GSMTree-TDM"
    return interconnect


def gsmtree_fbsp(
    n_clients: int,
    workloads: Sequence[float | Fraction],
    fifo_capacity: int = 4,
    min_frame: int | None = None,
) -> GsmTreeInterconnect:
    """GSMTree with workload-proportional reservation (GSMTree-FBSP).

    The frame must be longer than one slot per client or proportional
    apportionment degenerates to equal shares; default is 4 slots per
    client."""
    if len(workloads) != n_clients:
        raise ConfigurationError(
            f"{len(workloads)} workloads for {n_clients} clients"
        )
    if min_frame is None:
        min_frame = 4 * n_clients
    frame = build_fbsp_frame(workloads, min_frame=min_frame)
    interconnect = GsmTreeInterconnect(n_clients, fifo_capacity, frame=frame)
    interconnect.name = "GSMTree-FBSP"
    return interconnect
