"""Shared binary-multiplexer-tree substrate for BlueTree and GSMTree.

Both baselines restructure the request path as a staged pipeline of
2-to-1 multiplexers (paper Sec. 2, Fig. 1(b)).  This module provides
the tree plumbing — FIFO port buffers, one-forward-per-cycle nodes,
backpressure, response routing — parameterized by the per-node
arbitration policy and an optional root admission gate (used by
GSMTree's global TDM arbitration).
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.errors import ConfigurationError
from repro.interconnects.base import Interconnect
from repro.memory.request import MemoryRequest
from repro.topology import NodeId, TreeTopology, binary_tree

#: hook consuming a request at a node's provider side; True = consumed
_ForwardHook = Callable[[MemoryRequest, int], bool]


class MuxNode:
    """One 2-to-1 multiplexer stage with FIFO input buffers."""

    FANOUT = 2

    def __init__(self, node: NodeId, fifo_capacity: int) -> None:
        if fifo_capacity <= 0:
            raise ConfigurationError("fifo capacity must be positive")
        self.node = node
        #: observability site label (used only for traced requests)
        self._site = f"mux:{node[0]}:{node[1]}"
        self.fifo_capacity = fifo_capacity
        self.fifos: list[deque[MemoryRequest]] = [deque(), deque()]
        self.forward: _ForwardHook | None = None
        self.forwarded = 0

    def try_accept(
        self, port: int, request: MemoryRequest, cycle: int = 0
    ) -> bool:
        fifo = self.fifos[port]
        if len(fifo) >= self.fifo_capacity:
            return False
        fifo.append(request)
        ctx = request.trace_ctx
        if ctx is not None:
            ctx.emit(
                self._site,
                "enqueue",
                cycle,
                {"port": port, "occupancy": self.occupancy()},
            )
        return True

    def occupancy(self) -> int:
        return len(self.fifos[0]) + len(self.fifos[1])

    def is_quiescent(self) -> bool:
        """Empty FIFOs mean choose_port() has nothing to pick: a tick is
        a pure no-op (arbiter state like BlueTree's streak only changes
        on forwards, and TDM slot ownership is a pure function of the
        cycle number)."""
        return not self.fifos[0] and not self.fifos[1]

    # -- arbitration (overridden by concrete trees) ---------------------------
    def choose_port(self, cycle: int) -> int | None:
        """Pick the input port to forward from (None = nothing ready)."""
        raise NotImplementedError

    def tick(self, cycle: int) -> None:
        port = self.choose_port(cycle)
        if port is None:
            return
        fifo = self.fifos[port]
        head = fifo[0]
        if self.forward is not None and self.forward(head, cycle):
            fifo.popleft()
            self.forwarded += 1
            ctx = head.trace_ctx
            if ctx is not None:
                ctx.emit(self._site, "arbitration_win", cycle, {"port": port})
            self.on_forwarded(port, head)

    def on_forwarded(self, port: int, request: MemoryRequest) -> None:
        """Post-forward bookkeeping; default charges priority inversion."""
        key = request.priority_key
        for fifo in self.fifos:
            for waiting in fifo:
                if waiting.priority_key < key:
                    waiting.charge_blocking()


class MuxTreeInterconnect(Interconnect):
    """A binary tree of :class:`MuxNode` stages (abstract: node factory)."""

    name = "mux-tree"

    def __init__(self, n_clients: int, fifo_capacity: int = 2) -> None:
        super().__init__(n_clients)
        self.topology: TreeTopology = binary_tree(n_clients)
        self.fifo_capacity = fifo_capacity
        self.nodes: dict[NodeId, MuxNode] = {}
        for node_id in self.topology.all_nodes():
            self.nodes[node_id] = self.make_node(node_id)
        self._wire()
        self._tick_order = [self.nodes[n] for n in self.topology.all_nodes()]
        # Prebound (node, fifo, fifo) rows for the fast-path scan: the
        # deques are created once per node, so binding them here lets
        # the occupancy test skip two attribute chases per node.
        self._fast_scan = [
            (node, node.fifos[0], node.fifos[1]) for node in self._tick_order
        ]
        # O(1) fabric occupancy: requests enter at a leaf (try_inject)
        # and leave at the root (_root_forward); hops between nodes are
        # net-zero.  Powers the O(1) quiescence veto check.
        self._occupancy = 0
        self._client_ingress = {
            client: (self.nodes[leaf], port)
            for client in range(n_clients)
            for leaf, port in (self.topology.leaf_of_client(client),)
        }

    def make_node(self, node_id: NodeId) -> MuxNode:
        raise NotImplementedError

    def _wire(self) -> None:
        for node_id, node in self.nodes.items():
            parent_id = self.topology.parent(node_id)
            if parent_id is None:
                node.forward = self._root_forward
            else:
                port = node_id[1] % 2
                parent = self.nodes[parent_id]
                node.forward = self._make_hop(parent, port)

    @staticmethod
    def _make_hop(parent: MuxNode, port: int) -> _ForwardHook:
        def hop(request: MemoryRequest, cycle: int) -> bool:
            return parent.try_accept(port, request, cycle)

        return hop

    def _root_forward(self, request: MemoryRequest, cycle: int) -> bool:
        if not self.admit_at_root(request, cycle):
            return False
        if not self._provider_can_accept():
            return False
        self._forward_to_provider(request, cycle)
        self._occupancy -= 1
        return True

    def admit_at_root(self, request: MemoryRequest, cycle: int) -> bool:
        """Root admission gate; default admits everything."""
        return True

    # -- Interconnect contract -----------------------------------------------
    def try_inject(self, request: MemoryRequest, cycle: int) -> bool:
        node, port = self._client_ingress[request.client_id]
        accepted = node.try_accept(port, request, cycle)
        if accepted:
            self._occupancy += 1
            if request.inject_cycle < 0:
                request.inject_cycle = cycle
        return accepted

    def tick_request_path(self, cycle: int) -> None:
        if self.fast_tick:
            # A node with empty FIFOs ticks to a pure no-op (its
            # arbiter holds no cycle-counted state), so the fast path
            # elides those calls; the reference path ticks every stage.
            if not self._occupancy:
                return
            for node, left, right in self._fast_scan:
                if left or right:
                    node.tick(cycle)
            return
        for node in self._tick_order:
            node.tick(cycle)

    def response_latency(self, client_id: int) -> int:
        return self.topology.hops_to_memory(client_id) + 1

    def requests_in_flight(self) -> int:
        return self._occupancy

    def is_quiescent(self) -> bool:
        return not self._occupancy

    def injection_blocked_until(self, client_id: int, cycle: int) -> int | None:
        """A full leaf FIFO refuses injections with no side effects."""
        node, port = self._client_ingress[client_id]
        if len(node.fifos[port]) >= self.fifo_capacity:
            return -1  # space only opens when the leaf node forwards
        return None
