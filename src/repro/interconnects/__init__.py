"""Interconnect models: BlueScale plus the paper's baselines."""

from repro.interconnects.base import Interconnect, charge_blocking_against
from repro.interconnects.axi_icrt import AxiIcRtInterconnect
from repro.interconnects.mux_tree import MuxNode, MuxTreeInterconnect
from repro.interconnects.bluetree import (
    BlueTreeInterconnect,
    BlueTreeNode,
    BlueTreeSmoothInterconnect,
)
from repro.interconnects.gsmtree import (
    GsmTreeInterconnect,
    build_fbsp_frame,
    build_tdm_frame,
    gsmtree_fbsp,
    gsmtree_tdm,
)

__all__ = [
    "Interconnect",
    "charge_blocking_against",
    "AxiIcRtInterconnect",
    "MuxNode",
    "MuxTreeInterconnect",
    "BlueTreeInterconnect",
    "BlueTreeNode",
    "BlueTreeSmoothInterconnect",
    "GsmTreeInterconnect",
    "build_fbsp_frame",
    "build_tdm_frame",
    "gsmtree_fbsp",
    "gsmtree_tdm",
]
