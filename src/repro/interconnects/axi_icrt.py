"""AXI-Interconnect^RT — the centralized real-time baseline (Jiang et
al., RTAS 2021; paper Sec. 1 and 6).

A monolithic switch box buffers every client's requests in a per-client
ingress FIFO; one central arbiter with a global view picks a winner
each arbitration round and pushes it down a fixed-depth pipeline to the
memory controller.  Two properties of the real design are modelled:

* **Bandwidth regulation** — AXI-IC^RT allocates memory bandwidth to
  each client based on its workload: a token-bucket regulator per
  client (budget ``B_c`` per replenishment window ``W``) gates
  eligibility, and the arbiter applies EDF among eligible clients.
  Regulation is what bounds clients' interference — and what causes
  the residual priority inversions Fig. 6 shows for this design.
* **Frequency scaling** — the monolithic arbiter's critical path grows
  with the client count, lowering the achievable clock (Fig. 5(c)).
  ``arbitration_interval`` expresses the resulting slowdown in
  transaction slots: the arbiter only picks a winner every that many
  cycles (1 = full speed).  Experiments derive it from the hardware
  frequency model.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

from repro.errors import ConfigurationError
from repro.interconnects.base import Interconnect
from repro.memory.request import MemoryRequest


class AxiIcRtInterconnect(Interconnect):
    """Centralized interconnect: regulated clients + global-EDF arbiter."""

    name = "AXI-IC^RT"

    def __init__(
        self,
        n_clients: int,
        fifo_capacity: int = 8,
        pipeline_latency: int = 2,
        arbitration_interval: int = 1,
    ) -> None:
        super().__init__(n_clients)
        if fifo_capacity <= 0:
            raise ConfigurationError("fifo capacity must be positive")
        if pipeline_latency < 1:
            raise ConfigurationError("pipeline latency must be >= 1")
        if arbitration_interval < 1:
            raise ConfigurationError("arbitration interval must be >= 1")
        self.fifo_capacity = fifo_capacity
        self.pipeline_latency = pipeline_latency
        self.arbitration_interval = arbitration_interval
        self._fifos: list[deque[MemoryRequest]] = [
            deque() for _ in range(n_clients)
        ]
        # The switch-box pipeline: (exit_cycle, request), FIFO order.
        self._pipeline: deque[tuple[int, MemoryRequest]] = deque()
        # Bandwidth regulation state (None = unregulated, pure EDF).
        self._window: int | None = None
        self._budgets: list[int] = []
        self._tokens: list[int] = []
        # Next window boundary whose replenishment has not run yet.
        # Boundaries are reconciled lazily (only whether one passed
        # matters, because replenishment fully resets the buckets), so
        # skipped idle ticks and quiescence leaps need no eager work.
        self._next_refill = 0
        # O(1) switch-box occupancy: requests enter at try_inject and
        # leave when the pipeline hands them to the provider.
        self._occupancy = 0
        # Clients with a non-empty ingress FIFO.  The arbiter's winner
        # is a unique priority minimum (rid breaks ties), so scanning
        # only these — in any order — picks the same request as the
        # full left-to-right scan.
        self._occupied_ids: set[int] = set()

    # -- configuration -----------------------------------------------------------
    def configure_regulation(
        self, budgets: Sequence[int], window: int
    ) -> None:
        """Assign per-client bandwidth: ``budgets[c]`` slots per ``window``.

        The centralized design's scheduling-scalability weakness shows
        here: *all* budgets must be recomputed whenever any client's
        workload changes (the paper contrasts this with BlueScale's
        path-local updates).
        """
        if len(budgets) != self.n_clients:
            raise ConfigurationError(
                f"{len(budgets)} budgets for {self.n_clients} clients"
            )
        if window < 1:
            raise ConfigurationError("regulation window must be >= 1")
        if any(b < 0 for b in budgets):
            raise ConfigurationError("budgets must be non-negative")
        if any(b > window for b in budgets):
            raise ConfigurationError("a budget cannot exceed the window")
        self._window = window
        self._budgets = list(budgets)
        self._tokens = list(budgets)
        self._next_refill = 0

    @property
    def window(self) -> int | None:
        """Bandwidth-regulation replenishment window (None = unregulated)."""
        return self._window

    @staticmethod
    def budgets_from_utilizations(
        utilizations: Sequence[float], window: int, margin: float = 1.2
    ) -> list[int]:
        """Workload-proportional budgets with head-room ``margin``."""
        budgets = []
        for u in utilizations:
            if u < 0:
                raise ConfigurationError(f"negative utilization {u}")
            budgets.append(min(window, max(1, round(u * window * margin))))
        return budgets

    # -- ingress ------------------------------------------------------------
    def try_inject(self, request: MemoryRequest, cycle: int) -> bool:
        fifo = self._fifos[request.client_id]
        if len(fifo) >= self.fifo_capacity:
            return False
        if request.inject_cycle < 0:
            request.inject_cycle = cycle
        fifo.append(request)
        self._occupancy += 1
        self._occupied_ids.add(request.client_id)
        ctx = request.trace_ctx
        if ctx is not None:
            ctx.emit(
                "axi-switch",
                "enqueue",
                cycle,
                {"port": request.client_id, "occupancy": len(fifo)},
            )
        return True

    # -- request path ------------------------------------------------------------
    def _eligible(self, client_id: int) -> bool:
        if self._window is None:
            return True
        return self._tokens[client_id] > 0

    def tick_request_path(self, cycle: int) -> None:
        if self.fast_tick and not self._occupancy:
            # Empty switch box: the arbiter has nothing to pick and the
            # pipeline nothing to drain; any missed window boundary is
            # reconciled by the lazy refill below on the next occupied
            # tick (no forward can have spent tokens in between).
            return
        # Token replenishment at window boundaries (lazy: one reset
        # covers every boundary passed since the last one ran, because
        # replenishment fully restores the buckets).
        if self._window is not None and cycle >= self._next_refill:
            self._tokens = list(self._budgets)
            self._next_refill = (cycle // self._window + 1) * self._window
        # Pipeline exit first: oldest entry reaches the controller.
        if self._pipeline and self._pipeline[0][0] <= cycle:
            if self._provider_can_accept():
                _, request = self._pipeline.popleft()
                self._forward_to_provider(request, cycle)
                self._occupancy -= 1
        # The arbiter only decides on its own (slower) clock.
        if cycle % self.arbitration_interval != 0:
            return
        best_client = -1
        best_key: tuple[int, int] | None = None
        if self.fast_tick:
            # Scan only occupied FIFOs: the winner is a unique priority
            # minimum (rid breaks ties), so any scan order picks the
            # same request as the reference left-to-right scan below.
            for client_id in self._occupied_ids:
                if not self._eligible(client_id):
                    continue
                key = self._fifos[client_id][0].priority_key
                if best_key is None or key < best_key:
                    best_key = key
                    best_client = client_id
        else:
            for client_id, fifo in enumerate(self._fifos):
                if not fifo or not self._eligible(client_id):
                    continue
                key = fifo[0].priority_key
                if best_key is None or key < best_key:
                    best_key = key
                    best_client = client_id
        if best_client < 0:
            return
        winner = self._fifos[best_client].popleft()
        if not self._fifos[best_client]:
            self._occupied_ids.discard(best_client)
        if self._window is not None:
            self._tokens[best_client] -= 1
        self._pipeline.append((cycle + self.pipeline_latency, winner))
        ctx = winner.trace_ctx
        if ctx is not None:
            ctx.emit(
                "axi-switch", "arbitration_win", cycle, {"port": best_client}
            )
        self._charge_blocking(winner)

    def _charge_blocking(self, forwarded: MemoryRequest) -> None:
        """Charge inversion to eligible (token-holding) waiting requests.

        A client throttled by its own bandwidth regulation is being
        shaped, not blocked by lower-priority traffic; only waiters the
        arbiter *could* have picked are charged.
        """
        key = forwarded.priority_key
        if self.fast_tick:
            # Charging is per-request and order-independent, so the
            # occupied-FIFO scan charges exactly the reference set.
            for client_id in self._occupied_ids:
                if not self._eligible(client_id):
                    continue
                for request in self._fifos[client_id]:
                    if request.priority_key < key:
                        request.charge_blocking()
            return
        for client_id, fifo in enumerate(self._fifos):
            if not self._eligible(client_id):
                continue
            for request in fifo:
                if request.priority_key < key:
                    request.charge_blocking()

    # -- response path -----------------------------------------------------
    def response_latency(self, client_id: int) -> int:
        return self.pipeline_latency

    # -- accounting --------------------------------------------------------
    def requests_in_flight(self) -> int:
        return self._occupancy

    # -- quiescence --------------------------------------------------------
    def is_quiescent(self) -> bool:
        """Idle ticks only touch token replenishment (reconciled below);
        the arbiter's own slower clock is a pure function of the cycle.

        Waiting requests whose clients are all token-starved also leave
        the tick pure (the arbiter skips ineligible clients and charges
        no blocking); :meth:`next_activity_cycle` pins the replenishment
        boundary that ends the starvation.
        """
        if not self._occupancy:
            return True
        if self._pipeline:
            return False
        return all(
            not self._eligible(client_id) for client_id in self._occupied_ids
        )

    def next_activity_cycle(self, cycle: int) -> int | None:
        candidate = super().next_activity_cycle(cycle)
        if self._window is not None and self._occupied_ids:
            boundary = -(-cycle // self._window) * self._window
            if candidate is None or boundary < candidate:
                candidate = boundary
        return candidate

    def on_cycles_skipped(self, start: int, cycles: int) -> None:
        """No eager work: token replenishment is reconciled lazily by
        the next occupied tick (see :meth:`tick_request_path`) — a
        single bucket reset covers every boundary inside the gap, and
        no forward can have spent tokens while the box sat idle."""

    def injection_blocked_until(self, client_id: int, cycle: int) -> int | None:
        """A full ingress FIFO refuses injections with no side effects
        (tokens gate the arbiter, not ingress)."""
        if len(self._fifos[client_id]) >= self.fifo_capacity:
            return -1  # space only opens when the arbiter picks this client
        return None
