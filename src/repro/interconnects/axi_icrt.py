"""AXI-Interconnect^RT — the centralized real-time baseline (Jiang et
al., RTAS 2021; paper Sec. 1 and 6).

A monolithic switch box buffers every client's requests in a per-client
ingress FIFO; one central arbiter with a global view picks a winner
each arbitration round and pushes it down a fixed-depth pipeline to the
memory controller.  Two properties of the real design are modelled:

* **Bandwidth regulation** — AXI-IC^RT allocates memory bandwidth to
  each client based on its workload: a token-bucket regulator per
  client (budget ``B_c`` per replenishment window ``W``) gates
  eligibility, and the arbiter applies EDF among eligible clients.
  Regulation is what bounds clients' interference — and what causes
  the residual priority inversions Fig. 6 shows for this design.
* **Frequency scaling** — the monolithic arbiter's critical path grows
  with the client count, lowering the achievable clock (Fig. 5(c)).
  ``arbitration_interval`` expresses the resulting slowdown in
  transaction slots: the arbiter only picks a winner every that many
  cycles (1 = full speed).  Experiments derive it from the hardware
  frequency model.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

from repro.errors import ConfigurationError
from repro.interconnects.base import Interconnect
from repro.memory.request import MemoryRequest


class AxiIcRtInterconnect(Interconnect):
    """Centralized interconnect: regulated clients + global-EDF arbiter."""

    name = "AXI-IC^RT"

    def __init__(
        self,
        n_clients: int,
        fifo_capacity: int = 8,
        pipeline_latency: int = 2,
        arbitration_interval: int = 1,
    ) -> None:
        super().__init__(n_clients)
        if fifo_capacity <= 0:
            raise ConfigurationError("fifo capacity must be positive")
        if pipeline_latency < 1:
            raise ConfigurationError("pipeline latency must be >= 1")
        if arbitration_interval < 1:
            raise ConfigurationError("arbitration interval must be >= 1")
        self.fifo_capacity = fifo_capacity
        self.pipeline_latency = pipeline_latency
        self.arbitration_interval = arbitration_interval
        self._fifos: list[deque[MemoryRequest]] = [
            deque() for _ in range(n_clients)
        ]
        # The switch-box pipeline: (exit_cycle, request), FIFO order.
        self._pipeline: deque[tuple[int, MemoryRequest]] = deque()
        # Bandwidth regulation state (None = unregulated, pure EDF).
        self._window: int | None = None
        self._budgets: list[int] = []
        self._tokens: list[int] = []

    # -- configuration -----------------------------------------------------------
    def configure_regulation(
        self, budgets: Sequence[int], window: int
    ) -> None:
        """Assign per-client bandwidth: ``budgets[c]`` slots per ``window``.

        The centralized design's scheduling-scalability weakness shows
        here: *all* budgets must be recomputed whenever any client's
        workload changes (the paper contrasts this with BlueScale's
        path-local updates).
        """
        if len(budgets) != self.n_clients:
            raise ConfigurationError(
                f"{len(budgets)} budgets for {self.n_clients} clients"
            )
        if window < 1:
            raise ConfigurationError("regulation window must be >= 1")
        if any(b < 0 for b in budgets):
            raise ConfigurationError("budgets must be non-negative")
        if any(b > window for b in budgets):
            raise ConfigurationError("a budget cannot exceed the window")
        self._window = window
        self._budgets = list(budgets)
        self._tokens = list(budgets)

    @staticmethod
    def budgets_from_utilizations(
        utilizations: Sequence[float], window: int, margin: float = 1.2
    ) -> list[int]:
        """Workload-proportional budgets with head-room ``margin``."""
        budgets = []
        for u in utilizations:
            if u < 0:
                raise ConfigurationError(f"negative utilization {u}")
            budgets.append(min(window, max(1, round(u * window * margin))))
        return budgets

    # -- ingress ------------------------------------------------------------
    def try_inject(self, request: MemoryRequest, cycle: int) -> bool:
        fifo = self._fifos[request.client_id]
        if len(fifo) >= self.fifo_capacity:
            return False
        if request.inject_cycle < 0:
            request.inject_cycle = cycle
        fifo.append(request)
        return True

    # -- request path ------------------------------------------------------------
    def _eligible(self, client_id: int) -> bool:
        if self._window is None:
            return True
        return self._tokens[client_id] > 0

    def tick_request_path(self, cycle: int) -> None:
        # Token replenishment at window boundaries.
        if self._window is not None and cycle % self._window == 0:
            self._tokens = list(self._budgets)
        # Pipeline exit first: oldest entry reaches the controller.
        if self._pipeline and self._pipeline[0][0] <= cycle:
            if self._provider_can_accept():
                _, request = self._pipeline.popleft()
                self._forward_to_provider(request, cycle)
        # The arbiter only decides on its own (slower) clock.
        if cycle % self.arbitration_interval != 0:
            return
        best_client = -1
        best_key: tuple[int, int] | None = None
        for client_id, fifo in enumerate(self._fifos):
            if not fifo or not self._eligible(client_id):
                continue
            key = fifo[0].priority_key
            if best_key is None or key < best_key:
                best_key = key
                best_client = client_id
        if best_client < 0:
            return
        winner = self._fifos[best_client].popleft()
        if self._window is not None:
            self._tokens[best_client] -= 1
        self._pipeline.append((cycle + self.pipeline_latency, winner))
        self._charge_blocking(winner)

    def _charge_blocking(self, forwarded: MemoryRequest) -> None:
        """Charge inversion to eligible (token-holding) waiting requests.

        A client throttled by its own bandwidth regulation is being
        shaped, not blocked by lower-priority traffic; only waiters the
        arbiter *could* have picked are charged.
        """
        key = forwarded.priority_key
        for client_id, fifo in enumerate(self._fifos):
            if not self._eligible(client_id):
                continue
            for request in fifo:
                if request.priority_key < key:
                    request.charge_blocking()

    # -- response path -----------------------------------------------------
    def response_latency(self, client_id: int) -> int:
        return self.pipeline_latency

    # -- accounting --------------------------------------------------------
    def requests_in_flight(self) -> int:
        return sum(len(f) for f in self._fifos) + len(self._pipeline)
