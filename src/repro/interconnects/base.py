"""Common machinery for all interconnect models.

Every interconnect in the paper's evaluation (BlueScale, AXI-IC^RT,
BlueTree, BlueTree-Smooth, GSMTree-TDM/-FBSP) implements the same
contract so the SoC simulator and the experiment harness can swap them
freely:

* ``try_inject(request, cycle)`` — a client offers a request at its
  ingress port; returns False when the port buffer is full (the client
  retries next cycle).
* ``tick_request_path(cycle)`` — advance the request pipeline one
  cycle; requests reaching the provider are pushed into the attached
  :class:`~repro.memory.controller.MemoryController` (respecting its
  backpressure).
* ``begin_response(request, cycle)`` — the controller finished a
  request; the interconnect routes the response back to the client.
* ``tick_response_path(cycle)`` — advance responses; returns requests
  delivered to their clients this cycle.

**Time base.** Simulations run in *transaction slots*: one cycle is the
time the provider needs to service one transaction (the paper's
"transaction time unit" from the compositional scheduling model).  All
periods, budgets and deadlines share this unit, which keeps the
schedulability analysis and the simulator commensurable.

**Response routing.** Response paths in all six designs are demux
chains without arbitration, so they are modelled as a fixed per-client
hop latency (one cycle per tree level, or the pipeline depth for the
centralized design).
"""

from __future__ import annotations

import heapq
from abc import ABC, abstractmethod

from repro.errors import ConfigurationError
from repro.memory.controller import MemoryController
from repro.memory.request import MemoryRequest


class Interconnect(ABC):
    """Abstract interconnect between ``n_clients`` and one provider."""

    #: short identifier used in experiment reports (override per design)
    name: str = "abstract"

    #: set by the SoC simulation when the engine's quiescence fast path
    #: is on: the interconnect may then elide per-stage work its own
    #: quiescence contract proves to be a pure no-op (e.g. ticking an
    #: empty mux node).  Off by default — the reference path ticks
    #: every stage every cycle, and results are identical either way.
    fast_tick: bool = False

    def __init__(self, n_clients: int) -> None:
        if n_clients < 1:
            raise ConfigurationError(f"need at least one client, got {n_clients}")
        self.n_clients = n_clients
        self.controller: MemoryController | None = None
        self._responses: list[tuple[int, int, MemoryRequest]] = []
        self._response_seq = 0
        self.forwarded_to_provider = 0

    # -- wiring ----------------------------------------------------------------
    def attach_controller(self, controller: MemoryController) -> None:
        """Connect the provider and register for its responses."""
        self.controller = controller
        controller.on_response = self.begin_response

    # -- client-side ingress -----------------------------------------------
    @abstractmethod
    def try_inject(self, request: MemoryRequest, cycle: int) -> bool:
        """Offer a request at the client's ingress; False if port full."""

    # -- request path ----------------------------------------------------------
    @abstractmethod
    def tick_request_path(self, cycle: int) -> None:
        """Advance the request pipeline by one cycle."""

    # -- response path -----------------------------------------------------
    @abstractmethod
    def response_latency(self, client_id: int) -> int:
        """Response-path latency (cycles) back to ``client_id``."""

    def begin_response(self, request: MemoryRequest, cycle: int) -> None:
        """Route a completed request back toward its client."""
        deliver_at = cycle + self.response_latency(request.client_id)
        heapq.heappush(
            self._responses, (deliver_at, self._response_seq, request)
        )
        self._response_seq += 1
        ctx = request.trace_ctx
        if ctx is not None:
            ctx.emit(
                "response-path",
                "response_enqueue",
                cycle,
                {"deliver_at": deliver_at},
            )

    def tick_response_path(self, cycle: int) -> list[MemoryRequest]:
        """Responses that reach their client this cycle."""
        delivered: list[MemoryRequest] = []
        responses = self._responses
        while responses and responses[0][0] <= cycle:
            _, _, request = heapq.heappop(responses)
            request.mark_complete(cycle)
            delivered.append(request)
        return delivered

    # -- provider-side helpers --------------------------------------------------
    def _provider_can_accept(self) -> bool:
        return self.controller is not None and self.controller.can_accept()

    def _forward_to_provider(self, request: MemoryRequest, cycle: int) -> None:
        assert self.controller is not None
        self.controller.enqueue(request, cycle)
        self.forwarded_to_provider += 1

    # -- accounting --------------------------------------------------------
    @abstractmethod
    def requests_in_flight(self) -> int:
        """Requests currently buffered inside the request path."""

    def responses_in_flight(self) -> int:
        return len(self._responses)

    def next_response_cycle(self) -> int | None:
        """Delivery cycle of the earliest buffered response (None = none).

        Response delivery cycles are pre-computed at
        :meth:`begin_response` time, so the heap head alone bounds the
        response path's next activity — cheaper than the full
        :meth:`next_activity_cycle`, which also scans request-path
        state the request stage already declares."""
        if self._responses:
            return self._responses[0][0]
        return None

    # -- quiescence --------------------------------------------------------
    def is_quiescent(self) -> bool:
        """True when ticking either path is a no-op (or reconcilable).

        With the request path empty no arbiter has anything to forward;
        in-flight responses do not veto quiescence because their
        delivery cycles are pre-computed — :meth:`next_activity_cycle`
        pins the earliest of them instead.  Designs whose idle ticks
        mutate cycle-counted state must also override
        ``on_cycles_skipped`` to reconcile it.
        """
        return self.requests_in_flight() == 0

    def next_activity_cycle(self, cycle: int) -> int | None:
        """Earliest cycle a buffered response reaches its client."""
        return self.next_response_cycle()

    def on_cycles_skipped(self, start: int, cycles: int) -> None:
        """Reconcile cycle-counted idle state after a quiescence leap.

        The base request/response plumbing keeps no per-cycle state, so
        the default is a no-op; subclasses with replenishment windows or
        period counters override this.
        """

    def injection_blocked_until(self, client_id: int, cycle: int) -> int | None:
        """Is an injection by ``client_id`` guaranteed to be refused?

        Lets a client with pending traffic count as quiescent while its
        refusals are side-effect-free no-ops.  Returns:

        * ``None`` — an injection may succeed at ``cycle``; the client
          must keep ticking (it vetoes quiescence).
        * a cycle ``>= cycle`` — refusals are guaranteed strictly before
          it (e.g. the next regulation replenishment); the engine may
          leap that far.
        * ``-1`` — blocked until the fabric itself acts (e.g. a full
          ingress buffer); safe because any fabric action caps the leap
          through the fabric's own quiescence declaration.

        The default is conservative: never blocked.
        """
        return None


def charge_blocking_against(
    forwarded: MemoryRequest, waiting: list[MemoryRequest]
) -> None:
    """Charge one blocking cycle to every waiting request whose deadline
    is earlier than the one being forwarded (priority inversion)."""
    key = forwarded.priority_key
    for request in waiting:
        if request.priority_key < key:
            request.charge_blocking()
