"""BlueTree and BlueTree-Smooth (paper Sec. 2; Audsley 2013, Wang 2020).

Each 2-to-1 multiplexer carries a local arbiter with a *blocking
factor* α: the left-hand input (port 0) is the local high-priority
path, and every α requests forwarded from it allow at most one request
from the right-hand input (port 1) to slip through.  With α = 1 the
node degenerates to round-robin.  The arbitration is a pure hardware
heuristic — it never looks at the software's deadlines, which is
exactly the scheduling-scalability weakness the paper attacks.

BlueTree-Smooth (Wang et al., RTAS 2020) adds deeper smoothing buffers
on the access paths, absorbing bursts and reducing (but not
eliminating) the timing variance.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.interconnects.mux_tree import MuxNode, MuxTreeInterconnect
from repro.topology import NodeId


class BlueTreeNode(MuxNode):
    """2-to-1 mux with the blocking-factor-α local arbiter."""

    def __init__(self, node: NodeId, fifo_capacity: int, alpha: int) -> None:
        super().__init__(node, fifo_capacity)
        if alpha < 1:
            raise ConfigurationError(f"blocking factor must be >= 1, got {alpha}")
        self.alpha = alpha
        self._left_streak = 0

    def choose_port(self, cycle: int) -> int | None:
        left, right = self.fifos
        if left and right:
            # Right slips through once every α consecutive left forwards.
            if self._left_streak >= self.alpha:
                return 1
            return 0
        if left:
            return 0
        if right:
            return 1
        return None

    def on_forwarded(self, port: int, request) -> None:  # noqa: ANN001
        if port == 0:
            self._left_streak += 1
        else:
            self._left_streak = 0
        super().on_forwarded(port, request)

    # Quiescence: the α-streak only advances on forwards, never on idle
    # ticks, so the inherited empty-FIFO check (MuxNode.is_quiescent)
    # is exact for BlueTree nodes — no reconciliation hook needed.


class BlueTreeInterconnect(MuxTreeInterconnect):
    """The original distributed BlueTree (shallow FIFOs, factor-α arbiters)."""

    name = "BlueTree"

    def __init__(
        self, n_clients: int, fifo_capacity: int = 2, alpha: int = 2
    ) -> None:
        self.alpha = alpha
        super().__init__(n_clients, fifo_capacity)

    def make_node(self, node_id: NodeId) -> MuxNode:
        return BlueTreeNode(node_id, self.fifo_capacity, self.alpha)


class BlueTreeSmoothInterconnect(BlueTreeInterconnect):
    """BlueTree with smoothing buffers (deeper FIFOs on the access paths)."""

    name = "BlueTree-Smooth"

    def __init__(
        self, n_clients: int, fifo_capacity: int = 8, alpha: int = 2
    ) -> None:
        super().__init__(n_clients, fifo_capacity=fifo_capacity, alpha=alpha)
