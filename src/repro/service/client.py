"""Blocking keep-alive client for the admission daemon.

A thin :mod:`http.client` wrapper (stdlib only, like the daemon): one
:class:`ServiceClient` holds one persistent connection, so a
load-generator thread pays the TCP handshake once and then streams
admission queries back to back.  Not thread-safe — give each thread its
own client, which is also how the benchmark drives the daemon.
"""

from __future__ import annotations

import http.client
import json

from repro.errors import ReproError
from repro.service.protocol import task_payload
from repro.tasks.task import PeriodicTask
from repro.tasks.taskset import TaskSet

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(ReproError):
    """The daemon answered with an error status.

    ``status`` carries the HTTP code; the message carries the daemon's
    JSON ``error`` field when present.
    """

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServiceClient:
    """One persistent connection to one admission daemon."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8787, timeout: float = 30.0
    ) -> None:
        self.host = host
        self.port = port
        self._conn = http.client.HTTPConnection(host, port, timeout=timeout)

    # -- plumbing ------------------------------------------------------------
    def _request(self, method: str, path: str, body: dict | None = None) -> dict:
        payload = None if body is None else json.dumps(body).encode()
        headers = {"Content-Type": "application/json"} if payload else {}
        try:
            self._conn.request(method, path, body=payload, headers=headers)
            response = self._conn.getresponse()
            raw = response.read()
        except (http.client.HTTPException, OSError):
            # One transparent retry on a dropped keep-alive connection.
            self._conn.close()
            self._conn.connect()
            self._conn.request(method, path, body=payload, headers=headers)
            response = self._conn.getresponse()
            raw = response.read()
        try:
            decoded = json.loads(raw) if raw else {}
        except ValueError:
            decoded = {"error": raw.decode("latin-1", "replace")}
        if response.status >= 400:
            raise ServiceError(
                response.status, str(decoded.get("error", decoded))
            )
        return decoded

    def close(self) -> None:
        """Drop the persistent connection."""
        self._conn.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- endpoints -----------------------------------------------------------
    def healthz(self) -> dict:
        """Liveness probe (``GET /healthz``)."""
        return self._request("GET", "/healthz")

    def model(self) -> dict:
        """The loaded model's summary (``GET /model``)."""
        return self._request("GET", "/model")

    def metrics(self) -> dict:
        """Counters, latency percentiles, cache stats (``GET /metrics``)."""
        return self._request("GET", "/metrics")

    def reset(self) -> dict:
        """Roll the daemon's session back to its baseline (``POST /reset``)."""
        return self._request("POST", "/reset")

    def admission(
        self,
        client_id: int,
        tasks: "TaskSet | PeriodicTask | list[PeriodicTask]",
        commit: bool = False,
    ) -> dict:
        """Submit one admission query (``POST /admission``).

        Returns the decision payload — ``admitted`` plus either the
        selected leaf ``interface`` or the rejection ``witness``.  A
        rejection is still a 200: only malformed requests and daemon
        faults raise :class:`ServiceError`.
        """
        if isinstance(tasks, PeriodicTask):
            tasks = [tasks]
        body = {
            "client_id": client_id,
            "tasks": [task_payload(task) for task in tasks],
            "commit": commit,
        }
        return self._request("POST", "/admission", body)

    def evict(self, client_id: int) -> dict:
        """Drop one client's admitted tasks (``POST /evict``).

        Always commits (removing demand can only loosen the hierarchy);
        the decision payload carries the relaxed path interfaces.
        """
        return self._request("POST", "/evict", {"client_id": client_id})
