"""Wire protocol of the admission-control service: JSON in, JSON out.

Everything the daemon and its client agree on lives here — request
validation (untrusted JSON → typed :class:`~repro.tasks.task.PeriodicTask`
sets), and the response payload builders that turn an
:class:`~repro.analysis.session.AdmissionDecision` or a metrics registry
into plain JSON-able dicts.  Keeping both directions in one module means
the daemon, the :class:`~repro.service.client.ServiceClient` and the
tests can never drift apart on field names.

Task payload::

    {"period": 1000, "wcet": 2, "name": "camera"}      # name optional

Admission request (``POST /admission``)::

    {"client_id": 3, "tasks": [<task>, ...], "commit": false}

``commit=false`` probes (read-only); ``commit=true`` admits and, on
success, commits the new workload into the service's session.  The
response carries ``admitted`` plus either the selected leaf ``(Π, Θ)``
``interface`` or a rejection ``witness``.

Evict request (``POST /evict``)::

    {"client_id": 3}

Always commits — removing demand can only loosen the hierarchy — and
answers with the same decision payload shape.  A scenario replay
(:func:`repro.scenarios.replay.replay_plan_service`) drives churn
through exactly these two endpoints.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.analysis.prm import ResourceInterface
from repro.analysis.session import AdmissionDecision
from repro.errors import ConfigurationError, ReproError
from repro.tasks.task import PeriodicTask
from repro.tasks.taskset import TaskSet

__all__ = [
    "RequestError",
    "decision_payload",
    "interface_payload",
    "parse_admission_request",
    "parse_evict_request",
    "parse_tasks",
    "task_payload",
]

#: hard cap on tasks per submission — bounds per-request analysis work
MAX_TASKS_PER_REQUEST = 64


class RequestError(ReproError):
    """A request payload failed validation (maps to HTTP 400).

    Distinct from :class:`repro.errors.ProtocolError`, which belongs to
    the *interconnect handshake* protocol, not the service wire format.
    """


def _require_int(value: Any, name: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise RequestError(f"{name} must be an integer, got {value!r}")
    return value


def parse_tasks(payload: Any) -> TaskSet:
    """Validate a JSON task list into a :class:`TaskSet`.

    Raises :class:`RequestError` on anything malformed — wrong types,
    non-positive parameters, ``wcet > period``, empty or oversized
    lists — so the daemon can answer 400 instead of crashing a worker.
    """
    if not isinstance(payload, list):
        raise RequestError(f"tasks must be a list, got {type(payload).__name__}")
    if not payload:
        raise RequestError("tasks list is empty")
    if len(payload) > MAX_TASKS_PER_REQUEST:
        raise RequestError(
            f"too many tasks: {len(payload)} > {MAX_TASKS_PER_REQUEST}"
        )
    tasks = []
    for index, entry in enumerate(payload):
        if not isinstance(entry, Mapping):
            raise RequestError(f"tasks[{index}] must be an object")
        unknown = set(entry) - {"period", "wcet", "name"}
        if unknown:
            raise RequestError(
                f"tasks[{index}] has unknown fields {sorted(unknown)}"
            )
        period = _require_int(entry.get("period"), f"tasks[{index}].period")
        wcet = _require_int(entry.get("wcet"), f"tasks[{index}].wcet")
        name = entry.get("name", "")
        if not isinstance(name, str):
            raise RequestError(f"tasks[{index}].name must be a string")
        try:
            tasks.append(PeriodicTask(period=period, wcet=wcet, name=name))
        except ConfigurationError as exc:
            raise RequestError(f"tasks[{index}]: {exc}") from exc
    return TaskSet(tasks)


def parse_admission_request(body: Any) -> tuple[int, TaskSet, bool]:
    """Validate a ``POST /admission`` body into ``(client_id, tasks, commit)``."""
    if not isinstance(body, Mapping):
        raise RequestError("request body must be a JSON object")
    unknown = set(body) - {"client_id", "tasks", "commit"}
    if unknown:
        raise RequestError(f"unknown fields {sorted(unknown)}")
    client_id = _require_int(body.get("client_id"), "client_id")
    tasks = parse_tasks(body.get("tasks"))
    commit = body.get("commit", False)
    if not isinstance(commit, bool):
        raise RequestError(f"commit must be a boolean, got {commit!r}")
    return client_id, tasks, commit


def parse_evict_request(body: Any) -> int:
    """Validate a ``POST /evict`` body into its ``client_id``."""
    if not isinstance(body, Mapping):
        raise RequestError("request body must be a JSON object")
    unknown = set(body) - {"client_id"}
    if unknown:
        raise RequestError(f"unknown fields {sorted(unknown)}")
    return _require_int(body.get("client_id"), "client_id")


def task_payload(task: PeriodicTask) -> dict:
    """One task as its wire representation."""
    payload: dict = {"period": task.period, "wcet": task.wcet}
    if task.name:
        payload["name"] = task.name
    return payload


def interface_payload(interface: ResourceInterface) -> dict:
    """One selected ``(Π, Θ)`` interface as its wire representation."""
    return {
        "period": interface.period,
        "budget": interface.budget,
        "bandwidth": interface.bandwidth_float,
    }


def decision_payload(decision: AdmissionDecision) -> dict:
    """The admission response body for one decision.

    Admitted decisions carry the client's selected leaf ``interface``
    and the ``path`` of reprogrammed per-hop interfaces; rejected ones
    carry the ``witness`` (see
    :meth:`~repro.analysis.session.RejectionWitness.as_dict`).
    """
    payload: dict = {
        "admitted": decision.admitted,
        "committed": decision.committed,
        "client_id": decision.client_id,
        "taskset_digest": decision.taskset_digest,
        "root_bandwidth": float(decision.composition.root_bandwidth),
    }
    if decision.admitted:
        payload["interface"] = interface_payload(decision.interface)
        payload["path"] = [
            {
                "node": list(node),
                "port": port,
                "interface": interface_payload(interface),
            }
            for node, port, interface in decision.path_interfaces()
        ]
    else:
        assert decision.witness is not None
        payload["witness"] = decision.witness.as_dict()
    return payload
