"""repro.service — the admission-control daemon and its client.

The online face of the compositional analysis: ``repro serve`` loads a
frozen :class:`~repro.analysis.model.SystemModel` and answers task-set
admission queries over HTTP/JSON through one shared
:class:`~repro.analysis.session.AdmissionSession` (stdlib asyncio, no
web framework).  See :mod:`repro.service.daemon` for the endpoint
table, :mod:`repro.service.protocol` for the wire format, and
:mod:`repro.service.client` for the blocking keep-alive client the
tests and the load benchmark use.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.daemon import (
    AdmissionService,
    ServiceHandle,
    start_background,
)
from repro.service.protocol import (
    RequestError,
    decision_payload,
    interface_payload,
    parse_admission_request,
    parse_tasks,
    task_payload,
)

__all__ = [
    "AdmissionService",
    "RequestError",
    "ServiceClient",
    "ServiceError",
    "ServiceHandle",
    "decision_payload",
    "interface_payload",
    "parse_admission_request",
    "parse_tasks",
    "start_background",
    "task_payload",
]
