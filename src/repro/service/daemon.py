"""The admission-control daemon: HTTP/JSON over stdlib asyncio.

``repro serve`` loads one frozen
:class:`~repro.analysis.model.SystemModel`, opens one long-lived
:class:`~repro.analysis.session.AdmissionSession` over it, and answers
admission queries over a deliberately tiny HTTP/1.1 surface (no
third-party web framework — ``asyncio`` streams only):

========  =============  ==================================================
method    path           behaviour
========  =============  ==================================================
GET       ``/healthz``   liveness probe
GET       ``/model``     the loaded model's ``describe()`` summary
GET       ``/metrics``   request counters, latency percentiles, cache stats
POST      ``/admission`` probe (or ``commit``) one task-set submission
POST      ``/evict``     drop one client's admitted tasks (always commits)
POST      ``/reset``     roll the session back to the model baseline
========  =============  ==================================================

The event loop parses requests and writes responses; the analysis
itself (the only CPU-heavy part) runs on a small thread pool via
``run_in_executor``, which is exactly why the
:class:`~repro.analysis.cache.AnalysisCache` those threads share must
be thread-safe.  Metrics are touched only from the event-loop thread,
so plain counters suffice.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.analysis.model import SystemModel
from repro.errors import ConfigurationError, ReproError
from repro.observability.metrics import MetricsRegistry
from repro.service.protocol import (
    RequestError,
    decision_payload,
    parse_admission_request,
    parse_evict_request,
)

__all__ = ["AdmissionService", "ServiceHandle", "start_background"]

#: largest request body the daemon will read
MAX_BODY_BYTES = 1 << 20

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


class AdmissionService:
    """One model, one shared session, one HTTP endpoint.

    ``max_workers`` sizes the analysis thread pool; admission
    throughput saturates quickly because warm-cache decisions are
    dominated by per-request Python work, so a handful of threads is
    plenty.
    """

    def __init__(self, model: SystemModel, max_workers: int = 4) -> None:
        if max_workers < 1:
            raise ConfigurationError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        self.model = model
        self.session = model.session()
        self.registry = MetricsRegistry()
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="admission"
        )
        self._requests = self.registry.counter("service/requests")
        self._admitted = self.registry.counter("service/admitted")
        self._rejected = self.registry.counter("service/rejected")
        self._errors = self.registry.counter("service/errors")
        self._latency = self.registry.histogram("service/latency_ms")

    # -- route handlers ------------------------------------------------------
    def _metrics_payload(self) -> dict:
        stats = self.session.cache_stats
        scalars = self.registry.summary_scalars()
        return {
            "metrics": scalars,
            # Explicit tail-latency block so monitors don't have to
            # know the registry's flattened-key naming scheme.
            "latency_ms": {
                "p50": scalars.get("service/latency_ms_p50", 0.0),
                "p95": scalars.get("service/latency_ms_p95", 0.0),
                "p99": scalars.get("service/latency_ms_p99", 0.0),
                "max": scalars.get("service/latency_ms_max", 0.0),
            },
            "cache": {
                "selection_hits": stats.selection_hits,
                "selection_misses": stats.selection_misses,
                "grid_hits": stats.grid_hits,
                "grid_misses": stats.grid_misses,
                "lookups": stats.lookups,
                "hit_rate": stats.hit_rate,
            },
            "session_decisions": self.session.decisions,
        }

    async def _handle_admission(self, body: bytes) -> tuple[int, dict]:
        try:
            request = json.loads(body)
        except ValueError as exc:
            raise RequestError(f"body is not valid JSON: {exc}") from exc
        client_id, tasks, commit = parse_admission_request(request)
        loop = asyncio.get_running_loop()
        started = time.perf_counter()
        call = self.session.admit if commit else self.session.probe
        decision = await loop.run_in_executor(
            self._pool, call, client_id, tasks
        )
        self._latency.observe((time.perf_counter() - started) * 1000.0)
        if decision.admitted:
            self._admitted.increment()
        else:
            self._rejected.increment()
        return 200, decision_payload(decision)

    async def _handle_evict(self, body: bytes) -> tuple[int, dict]:
        try:
            request = json.loads(body)
        except ValueError as exc:
            raise RequestError(f"body is not valid JSON: {exc}") from exc
        client_id = parse_evict_request(request)
        loop = asyncio.get_running_loop()
        started = time.perf_counter()
        decision = await loop.run_in_executor(
            self._pool, self.session.evict, client_id
        )
        self._latency.observe((time.perf_counter() - started) * 1000.0)
        self._admitted.increment()  # an evict always commits
        return 200, decision_payload(decision)

    async def _dispatch(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, dict]:
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "method not allowed"}
            return 200, {"status": "ok"}
        if path == "/model":
            if method != "GET":
                return 405, {"error": "method not allowed"}
            return 200, self.model.describe()
        if path == "/metrics":
            if method != "GET":
                return 405, {"error": "method not allowed"}
            return 200, self._metrics_payload()
        if path == "/admission":
            if method != "POST":
                return 405, {"error": "method not allowed"}
            return await self._handle_admission(body)
        if path == "/evict":
            if method != "POST":
                return 405, {"error": "method not allowed"}
            return await self._handle_evict(body)
        if path == "/reset":
            if method != "POST":
                return 405, {"error": "method not allowed"}
            self.session.reset()
            return 200, {"status": "reset"}
        return 404, {"error": f"no such endpoint: {path}"}

    # -- HTTP plumbing -------------------------------------------------------
    @staticmethod
    def _response(status: int, payload: dict, close: bool) -> bytes:
        body = json.dumps(payload).encode()
        connection = "close" if close else "keep-alive"
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {connection}\r\n\r\n"
        )
        return head.encode() + body

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            await self._serve_requests(reader, writer)
        except asyncio.CancelledError:
            pass  # event loop shutting down mid-connection
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (
                ConnectionResetError,
                BrokenPipeError,
                asyncio.CancelledError,
            ):
                pass

    async def _serve_requests(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        while True:
            try:
                header_blob = await reader.readuntil(b"\r\n\r\n")
            except (
                asyncio.IncompleteReadError,
                asyncio.LimitOverrunError,
                ConnectionResetError,
            ):
                break
            lines = header_blob.decode("latin-1").split("\r\n")
            parts = lines[0].split()
            if len(parts) != 3:
                writer.write(
                    self._response(
                        400, {"error": "malformed request line"}, True
                    )
                )
                break
            method, target, _version = parts
            headers = {}
            for line in lines[1:]:
                if ":" in line:
                    key, _, value = line.partition(":")
                    headers[key.strip().lower()] = value.strip()
            try:
                length = int(headers.get("content-length", "0"))
            except ValueError:
                length = -1
            if not 0 <= length <= MAX_BODY_BYTES:
                writer.write(
                    self._response(
                        413, {"error": "bad content length"}, True
                    )
                )
                break
            body = await reader.readexactly(length) if length else b""
            close = headers.get("connection", "").lower() == "close"
            path = target.split("?", 1)[0]
            self._requests.increment()
            try:
                status, payload = await self._dispatch(method, path, body)
            except (RequestError, ConfigurationError) as exc:
                status, payload = 400, {"error": str(exc)}
            except ReproError as exc:
                self._errors.increment()
                status, payload = 500, {"error": str(exc)}
            except Exception as exc:  # noqa: BLE001 - daemon must answer
                self._errors.increment()
                status, payload = 500, {
                    "error": f"{type(exc).__name__}: {exc}"
                }
            writer.write(self._response(status, payload, close))
            await writer.drain()
            if close:
                break

    # -- lifecycle -----------------------------------------------------------
    async def serve(self, host: str, port: int) -> asyncio.base_events.Server:
        """Bind and return the listening server (caller drives the loop)."""
        return await asyncio.start_server(self._handle_connection, host, port)

    def run(self, host: str = "127.0.0.1", port: int = 8787) -> None:
        """Serve forever on the current thread (Ctrl-C to stop)."""

        async def _main() -> None:
            server = await self.serve(host, port)
            bound = server.sockets[0].getsockname()
            print(
                f"repro admission service on http://{bound[0]}:{bound[1]} "
                f"({self.model.label or 'custom model'}, "
                f"{self.model.n_clients} clients)"
            )
            async with server:
                await server.serve_forever()

        try:
            asyncio.run(_main())
        except KeyboardInterrupt:
            pass
        finally:
            self.close()

    def close(self) -> None:
        """Release the analysis thread pool."""
        self._pool.shutdown(wait=False, cancel_futures=True)


class ServiceHandle:
    """A running background daemon: where it listens and how to stop it."""

    def __init__(self, service: AdmissionService, host: str) -> None:
        self.service = service
        self.host = host
        self.port: int | None = None
        self._ready = threading.Event()
        self._stop: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None

    @property
    def url(self) -> str:
        """Base URL of the listening daemon."""
        return f"http://{self.host}:{self.port}"

    def _serve_thread(self, port: int) -> None:
        async def _main() -> None:
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            server = await self.service.serve(self.host, port)
            self.port = server.sockets[0].getsockname()[1]
            self._ready.set()
            async with server:
                await self._stop.wait()

        try:
            asyncio.run(_main())
        finally:
            self._ready.set()  # unblock a waiter even on bind failure

    def start(self, port: int = 0, timeout: float = 10.0) -> "ServiceHandle":
        """Launch the daemon thread and wait until the socket is bound."""
        self._thread = threading.Thread(
            target=self._serve_thread, args=(port,), daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout)
        if self.port is None:
            raise ConfigurationError(
                f"service failed to bind on {self.host}:{port}"
            )
        return self

    def stop(self) -> None:
        """Shut the daemon down and join its thread."""
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        self.service.close()


def start_background(
    model: SystemModel,
    host: str = "127.0.0.1",
    port: int = 0,
    max_workers: int = 4,
) -> ServiceHandle:
    """Run an :class:`AdmissionService` on a daemon thread.

    ``port=0`` picks an ephemeral port; the returned handle exposes the
    resolved :attr:`~ServiceHandle.url` and a blocking
    :meth:`~ServiceHandle.stop`.  This is how the tests, the example and
    the load benchmark embed the daemon in-process.
    """
    service = AdmissionService(model, max_workers=max_workers)
    return ServiceHandle(service, host).start(port)
