"""Command-line interface: ``python -m repro <experiment> [options]``.

Runs any of the paper's experiments (or the extensions) from the shell,
prints the same rows/series the paper reports, and optionally saves the
structured result as JSON.

Every simulation-driven experiment accepts ``--workers N`` to fan its
trials out over ``N`` processes through the trial-execution runtime
(:mod:`repro.runtime`); results are bit-identical to a serial run.

Examples::

    python -m repro table1
    python -m repro fig5 --output results/fig5.json
    python -m repro fig6 --clients 16 --trials 5 --workers 4
    python -m repro fig7 --processors 16 --trials 4 --seed 7
    python -m repro ablation
    python -m repro dram
    python -m repro update-latency
    python -m repro trace --figure fig6 --trial 2 --export spans.jsonl
    python -m repro faults --trials 5 --workers 2
    python -m repro churn --trials 3 --verify
    python -m repro serve --clients 16 --port 8787
    python -m repro campaign run campaigns/ci.json --out results/ci
    python -m repro campaign report results/ci
    python -m repro campaign diff tests/fixtures/golden_campaign.json \\
        results/ci

``--seed S`` is accepted by every subcommand (the analytical ones
ignore it) and pins the base seed of simulation-backed experiments.
"""

from __future__ import annotations

import argparse
from typing import Sequence


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BlueScale (DAC 2022) reproduction experiments",
    )
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--output",
        metavar="PATH",
        help="also save the structured result as JSON",
    )
    common.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="fan trials out over N processes (default: 1, serial); "
        "results are identical to a serial run",
    )
    common.add_argument(
        "--progress",
        action="store_true",
        help="print trial progress/timing to stderr",
    )
    common.add_argument(
        "--seed",
        type=int,
        default=None,
        metavar="S",
        help="override the experiment's base seed (simulation-backed "
        "subcommands; ignored by the purely analytical ones)",
    )
    common.add_argument(
        "--analysis-backend",
        choices=("scalar", "vectorized"),
        default=None,
        help="schedulability-analysis engine backend for this run "
        "(default: the built-in default, vectorized); results are "
        "identical under either backend",
    )
    common.add_argument(
        "--sim-backend",
        choices=("scalar", "batched"),
        default=None,
        help="simulator backend for this run (default: the built-in "
        "default, batched lock-step over numpy arrays); results are "
        "bit-identical under either backend",
    )
    sub = parser.add_subparsers(dest="experiment", required=True)

    sub.add_parser(
        "table1",
        help="Table 1: hardware overhead (16 clients)",
        parents=[common],
    )

    fig5 = sub.add_parser(
        "fig5", help="Fig. 5: hardware scalability", parents=[common]
    )
    fig5.add_argument("--eta-max", type=int, default=7)

    fig6 = sub.add_parser(
        "fig6", help="Fig. 6: real-time performance", parents=[common]
    )
    fig6.add_argument("--clients", type=int, default=16, choices=(16, 64))
    fig6.add_argument("--trials", type=int, default=5)
    fig6.add_argument("--horizon", type=int, default=20_000)

    fig7 = sub.add_parser(
        "fig7", help="Fig. 7: automotive case study", parents=[common]
    )
    fig7.add_argument("--processors", type=int, default=16, choices=(16, 64))
    fig7.add_argument("--trials", type=int, default=4)
    fig7.add_argument("--horizon", type=int, default=15_000)
    fig7.add_argument(
        "--with-analysis",
        action="store_true",
        help="also run the compositional analysis per trial and report "
        "the analytically-schedulable ratio next to the simulated one",
    )

    faults = sub.add_parser(
        "faults",
        help="fault-injection campaign: temporal isolation under a "
        "rogue client, checked against the analytical bounds",
        parents=[common],
    )
    faults.add_argument("--clients", type=int, default=8)
    faults.add_argument("--trials", type=int, default=5)
    faults.add_argument("--horizon", type=int, default=4_000)
    faults.add_argument(
        "--aggressor",
        type=int,
        default=0,
        metavar="ID",
        help="client turned rogue (default: 0)",
    )
    faults.add_argument(
        "--burst-size",
        type=int,
        default=24,
        help="rogue transactions per burst (default: 24)",
    )
    faults.add_argument(
        "--burst-every",
        type=int,
        default=60,
        help="cycles between rogue bursts (default: 60)",
    )

    churn = sub.add_parser(
        "churn",
        help="online-churn campaign: BlueScale path-local re-selection "
        "vs static/dynamic AXI regulation under joins, rate changes, "
        "mode switches and leaves",
        parents=[common],
    )
    churn.add_argument("--clients", type=int, default=8)
    churn.add_argument("--trials", type=int, default=3)
    churn.add_argument("--horizon", type=int, default=6_000)
    churn.add_argument(
        "--joiners",
        type=int,
        default=2,
        metavar="N",
        help="clients that start idle and join mid-run (default: 2)",
    )
    churn.add_argument(
        "--verify",
        action="store_true",
        help="exit 1 if any monitored deadline was missed inside a "
        "reconfiguration transient window",
    )

    ablation = sub.add_parser(
        "ablation",
        help="BlueScale design-choice ablations",
        parents=[common],
    )
    ablation.add_argument(
        "--quick", action="store_true", help="single-seed short run"
    )
    dram = sub.add_parser(
        "dram",
        help="provider-model sensitivity extension",
        parents=[common],
    )
    dram.add_argument(
        "--quick", action="store_true", help="single-seed short run"
    )
    update = sub.add_parser(
        "update-latency",
        help="task-join update locality extension",
        parents=[common],
    )
    update.add_argument(
        "--quick", action="store_true", help="16/64 clients only"
    )
    sweep = sub.add_parser(
        "scalability",
        help="miss/response vs client count extension",
        parents=[common],
    )
    sweep.add_argument(
        "--max-clients", type=int, default=64, choices=(16, 64, 256)
    )
    fairness = sub.add_parser(
        "fairness",
        help="per-client fairness extension",
        parents=[common],
    )
    fairness.add_argument(
        "--quick", action="store_true", help="single-seed short run"
    )
    campaign = sub.add_parser(
        "campaign",
        help="declarative campaigns: run a sweep spec with resumable "
        "checkpointing, render reports, diff against a golden baseline",
    )
    campaign_sub = campaign.add_subparsers(dest="campaign_command",
                                           required=True)
    campaign_run = campaign_sub.add_parser(
        "run",
        help="execute (or resume) a campaign spec into a results "
        "directory; exits 1 if any cell failed",
        parents=[common],
    )
    campaign_run.add_argument(
        "spec",
        metavar="SPEC",
        help="campaign spec file (.json; .toml where tomllib exists)",
    )
    campaign_run.add_argument(
        "--out",
        metavar="DIR",
        default=None,
        help="results directory (default: results/campaigns/<name>)",
    )
    campaign_run.add_argument(
        "--no-resume",
        action="store_true",
        help="discard any checkpoint in the results directory and "
        "start clean (default: finished cells are skipped)",
    )
    campaign_report = campaign_sub.add_parser(
        "report",
        help="render report.md + series.jsonl for a completed campaign "
        "directory or a golden baseline file",
    )
    campaign_report.add_argument(
        "source",
        metavar="PATH",
        help="campaign results directory or golden baseline JSON",
    )
    campaign_report.add_argument(
        "--out",
        metavar="DIR",
        default=None,
        help="where to write the report (default: next to the source)",
    )
    campaign_diff = campaign_sub.add_parser(
        "diff",
        help="regression-gate a campaign against a baseline: exits 1 "
        "on any violation of the spec's tolerance rules",
    )
    campaign_diff.add_argument(
        "baseline",
        metavar="BASELINE",
        help="golden baseline file or campaign results directory",
    )
    campaign_diff.add_argument(
        "current",
        metavar="CURRENT",
        help="campaign results directory (or baseline file) to check",
    )
    campaign_archive = campaign_sub.add_parser(
        "archive",
        help="legacy ad-hoc batch: run the standard experiment list "
        "and archive results + manifest",
        parents=[common],
    )
    campaign_archive.add_argument("--results-dir", default="results")
    campaign_archive.add_argument("--label", default=None)

    serve = sub.add_parser(
        "serve",
        help="run the admission-control daemon over a seeded system model",
        parents=[common],
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=8787,
        help="listening port (default: 8787; 0 picks an ephemeral port)",
    )
    serve.add_argument(
        "--clients",
        type=int,
        default=16,
        help="clients in the served model (default: 16)",
    )
    serve.add_argument(
        "--utilization",
        type=float,
        default=0.3,
        help="baseline system utilization of the model (default: 0.3)",
    )
    serve.add_argument(
        "--tasks-per-client",
        type=int,
        default=2,
        help="baseline tasks per client (default: 2)",
    )
    serve.add_argument(
        "--max-workers",
        type=int,
        default=4,
        help="analysis thread-pool size (default: 4)",
    )

    trace = sub.add_parser(
        "trace",
        help="replay one fig6/fig7 trial with tracing and reconstruct "
        "a request's per-hop timeline",
        parents=[common],
    )
    trace.add_argument(
        "--figure",
        choices=("fig6", "fig7"),
        default="fig6",
        help="which experiment's trial to replay (default: fig6)",
    )
    trace.add_argument(
        "--interconnect",
        default="BlueScale",
        metavar="NAME",
        help="design to trace (default: BlueScale)",
    )
    trace.add_argument(
        "--trial", type=int, default=0, help="trial index (default: 0)"
    )
    trace.add_argument(
        "--rid",
        type=int,
        default=None,
        help="request id to reconstruct (default: worst recorded blocking)",
    )
    trace.add_argument("--clients", type=int, default=16, choices=(16, 64))
    trace.add_argument(
        "--utilization",
        type=float,
        default=0.7,
        help="fig7 target utilization point (default: 0.7)",
    )
    trace.add_argument("--horizon", type=int, default=5_000)
    trace.add_argument(
        "--export",
        metavar="PATH",
        help="also export the full span stream as JSONL (schema-validated)",
    )
    return parser


def _configure_backends(
    analysis_backend: str | None, sim_backend: str | None
) -> None:
    """Set the process-wide engine defaults for this run.

    Module-level so ``partial(_configure_backends, ...)`` pickles by
    reference as an executor ``worker_init`` — parallel workers then
    resolve the exact same backends as a serial run.
    """
    if analysis_backend is not None:
        from repro.analysis import set_default_backend

        set_default_backend(analysis_backend)
    if sim_backend is not None:
        from repro.sim import set_default_sim_backend

        set_default_sim_backend(sim_backend)


def _campaign_main(args: argparse.Namespace) -> int:
    """The ``repro campaign <run|report|diff|archive>`` group."""
    if args.campaign_command == "report":
        from repro.campaigns import summarize_campaign

        report_path, series_path = summarize_campaign(
            args.source, out_dir=args.out
        )
        print(f"report written to {report_path}")
        print(f"series written to {series_path}")
        return 0
    if args.campaign_command == "diff":
        from repro.campaigns import (
            diff_campaigns,
            format_gate_report,
            load_artifacts,
        )

        baseline = load_artifacts(args.baseline)
        current = load_artifacts(args.current)
        violations = diff_campaigns(baseline, current)
        print(format_gate_report(violations, str(args.baseline)))
        return 1 if violations else 0

    # `run` and the legacy `archive` execute simulations: configure the
    # process-wide backends first, exactly like the experiment
    # subcommands, and replicate them into any worker pool.
    from functools import partial

    from repro.runtime import ProgressPrinter

    worker_init = None
    if args.analysis_backend is not None or args.sim_backend is not None:
        _configure_backends(args.analysis_backend, args.sim_backend)
        worker_init = partial(
            _configure_backends, args.analysis_backend, args.sim_backend
        )
    hooks = ProgressPrinter() if args.progress else None

    if args.campaign_command == "archive":
        from repro.experiments.campaign import default_specs
        from repro.experiments.campaign import run_campaign as run_archive
        from repro.runtime import make_executor

        executor = make_executor(args.workers, worker_init)
        record = run_archive(
            default_specs(quick=True, executor=executor),
            args.results_dir,
            label=args.label,
            workers=executor.workers,
        )
        print(f"campaign '{record.label}' archived to {record.directory}")
        for name, seconds in record.seconds.items():
            print(f"  {name}: {seconds:.1f}s (workers={record.workers})")
        if args.output:
            from repro.experiments.persistence import save_json

            path = save_json(record.metrics, args.output, label="campaign")
            print(f"\nresult saved to {path}")
        return 0

    assert args.campaign_command == "run", args.campaign_command
    from repro.campaigns import load_campaign_spec, run_campaign

    spec = load_campaign_spec(args.spec)
    out_dir = (
        args.out
        if args.out is not None
        else f"results/campaigns/{spec.name}"
    )
    run = run_campaign(
        spec,
        out_dir,
        workers=args.workers,
        resume=not args.no_resume,
        hooks=hooks,
        worker_init=worker_init,
    )
    print(
        f"campaign '{spec.name}': {len(run.records)} cell(s) "
        f"({run.resumed_cells} resumed, {run.executed_cells} executed, "
        f"{len(run.failed_cells)} failed) -> {run.directory}"
    )
    print(f"cells digest: {run.manifest['cells_digest']}")
    for record in run.failed_cells:
        print(f"  FAILED {record.cell_id}: {record.error}")
    if args.output:
        from repro.experiments.persistence import save_json

        path = save_json(run.manifest, args.output, label=spec.name)
        print(f"\nmanifest saved to {path}")
    return 1 if run.failed_cells else 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.experiment == "campaign":
        return _campaign_main(args)
    # Imports are deferred so `--help` stays instant.
    from repro.runtime import ProgressPrinter, make_executor

    worker_init = None
    if args.analysis_backend is not None or args.sim_backend is not None:
        from functools import partial

        # Configure this process *and* any worker pool the executor
        # spawns, so trials inside parallel workers use the same
        # backends as a serial run.
        _configure_backends(args.analysis_backend, args.sim_backend)
        worker_init = partial(
            _configure_backends, args.analysis_backend, args.sim_backend
        )
    executor = make_executor(args.workers, worker_init)
    hooks = ProgressPrinter() if args.progress else None
    failed = False
    if args.experiment == "table1":
        from repro.experiments.table1 import format_table1, run_table1

        result = run_table1()
        print(format_table1(result))
    elif args.experiment == "fig5":
        from repro.experiments.fig5 import format_fig5, run_fig5

        result = run_fig5(1, args.eta_max)
        print(format_fig5(result))
    elif args.experiment == "fig6":
        from repro.experiments.fig6 import Fig6Config, format_fig6, run_fig6

        kwargs = dict(
            n_clients=args.clients, trials=args.trials, horizon=args.horizon
        )
        if args.seed is not None:
            kwargs["seed"] = args.seed
        result = run_fig6(Fig6Config(**kwargs), executor=executor, hooks=hooks)
        print(format_fig6(result))
    elif args.experiment == "fig7":
        from repro.experiments.fig7 import Fig7Config, format_fig7, run_fig7

        kwargs = dict(
            n_processors=args.processors,
            trials=args.trials,
            horizon=args.horizon,
            analysis=args.with_analysis,
            analysis_backend=args.analysis_backend,
        )
        if args.seed is not None:
            kwargs["seed"] = args.seed
        result = run_fig7(Fig7Config(**kwargs), executor=executor, hooks=hooks)
        print(format_fig7(result))
    elif args.experiment == "faults":
        from repro.experiments.isolation import (
            IsolationConfig,
            format_isolation,
            run_isolation,
        )

        kwargs = dict(
            n_clients=args.clients,
            trials=args.trials,
            horizon=args.horizon,
            aggressor=args.aggressor,
            burst_size=args.burst_size,
            burst_every=args.burst_every,
        )
        if args.seed is not None:
            kwargs["seed"] = args.seed
        result = run_isolation(
            IsolationConfig(**kwargs), executor=executor, hooks=hooks
        )
        print(format_isolation(result))
        failed = result.total_bound_violations > 0
    elif args.experiment == "churn":
        from repro.experiments.churn import (
            ChurnConfig,
            format_churn,
            run_churn,
        )

        kwargs = dict(
            n_clients=args.clients,
            trials=args.trials,
            horizon=args.horizon,
            joiners=args.joiners,
        )
        if args.seed is not None:
            kwargs["seed"] = args.seed
        result = run_churn(
            ChurnConfig(**kwargs), executor=executor, hooks=hooks
        )
        print(format_churn(result))
        failed = args.verify and result.total_transient_violations > 0
    elif args.experiment == "ablation":
        from repro.experiments.ablation import run_ablation
        from repro.experiments.reporting import format_table

        seed_kwargs = {}
        if args.seed is not None:
            seed_kwargs["seeds"] = (args.seed,)
        if args.quick:
            result = run_ablation(
                seeds=(args.seed if args.seed is not None else 1,),
                horizon=5_000,
                executor=executor,
                hooks=hooks,
            )
        else:
            result = run_ablation(executor=executor, hooks=hooks, **seed_kwargs)
        rows = [
            [
                p.variant,
                f"{100 * p.mean_miss_ratio:.2f}",
                f"{p.mean_blocking:.2f}",
                f"{p.mean_response:.1f}",
            ]
            for p in result.values()
        ]
        print(
            format_table(
                ["variant", "miss (%)", "blocking", "response"],
                rows,
                title="BlueScale design-choice ablations",
            )
        )
    elif args.experiment == "dram":
        from repro.experiments.dram_sensitivity import (
            format_dram_sensitivity,
            run_dram_sensitivity,
        )

        seed_kwargs = {}
        if args.seed is not None:
            seed_kwargs["seeds"] = (args.seed,)
        if args.quick:
            result = run_dram_sensitivity(
                seeds=(args.seed if args.seed is not None else 1,),
                horizon=5_000,
                executor=executor,
                hooks=hooks,
            )
        else:
            result = run_dram_sensitivity(
                executor=executor, hooks=hooks, **seed_kwargs
            )
        print(format_dram_sensitivity(result))
    elif args.experiment == "update-latency":
        from repro.experiments.update_latency import (
            format_update_latency,
            run_update_latency,
        )

        if args.quick:
            result = run_update_latency((16, 64))
        else:
            result = run_update_latency()
        print(format_update_latency(result))
    elif args.experiment == "scalability":
        from repro.experiments.scalability_sweep import (
            format_scalability,
            run_scalability_sweep,
        )

        counts = tuple(c for c in (4, 16, 64, 256) if c <= args.max_clients)
        result = run_scalability_sweep(
            counts,
            seeds=(args.seed if args.seed is not None else 1,),
            analysis_backend=args.analysis_backend,
            executor=executor,
            hooks=hooks,
        )
        print(format_scalability(result))
    elif args.experiment == "fairness":
        from repro.experiments.fairness import format_fairness, run_fairness

        seed_kwargs = {}
        if args.seed is not None:
            seed_kwargs["seeds"] = (args.seed,)
        if args.quick:
            result = run_fairness(
                seeds=(args.seed if args.seed is not None else 1,),
                horizon=8_000,
                executor=executor,
                hooks=hooks,
            )
        else:
            result = run_fairness(executor=executor, hooks=hooks, **seed_kwargs)
        print(format_fairness(result))
    elif args.experiment == "serve":
        from repro.analysis.model import SystemModel
        from repro.service.daemon import AdmissionService

        model = SystemModel.from_seed(
            args.clients,
            utilization=args.utilization,
            tasks_per_client=args.tasks_per_client,
            seed=args.seed if args.seed is not None else 1,
            backend=args.analysis_backend,
        )
        print(f"model composed: {model.describe()}")
        AdmissionService(model, max_workers=args.max_workers).run(
            host=args.host, port=args.port
        )
        return 0
    elif args.experiment == "trace":
        from repro.observability import (
            build_timeline,
            format_timeline,
            validate_spans_jsonl,
            worst_blocking_rid,
        )

        # Seeds for N trials are a prefix of those for M > N trials, so
        # a config sized `trial + 1` re-derives the exact same spec the
        # full experiment would run at that index.
        if args.figure == "fig6":
            from repro.experiments.fig6 import Fig6Config
            from repro.experiments.trace_replay import trace_fig6_trial

            kwargs = dict(
                n_clients=args.clients,
                trials=args.trial + 1,
                horizon=args.horizon,
            )
            if args.seed is not None:
                kwargs["seed"] = args.seed
            traced = trace_fig6_trial(
                Fig6Config(**kwargs),
                trial=args.trial,
                interconnect=args.interconnect,
            )
        else:
            from repro.experiments.fig7 import Fig7Config
            from repro.experiments.trace_replay import trace_fig7_trial

            kwargs = dict(
                n_processors=args.clients,
                trials=args.trial + 1,
                horizon=args.horizon,
                utilizations=(args.utilization,),
            )
            if args.seed is not None:
                kwargs["seed"] = args.seed
            traced = trace_fig7_trial(
                Fig7Config(**kwargs),
                trial=args.trial,
                interconnect=args.interconnect,
            )
        recorder = traced.tracer.recorder
        spans = list(recorder.spans())
        rid = args.rid if args.rid is not None else worst_blocking_rid(spans)
        if rid is None:
            print(
                f"no delivered requests traced in {traced.experiment} trial "
                f"{traced.trial} on {traced.interconnect}"
            )
            return 1
        timeline = build_timeline(spans, rid)
        print(
            f"{traced.experiment} trial {traced.trial} on "
            f"{traced.interconnect} — {len(spans)} spans recorded "
            f"({recorder.dropped} evicted), digest {traced.trace_digest}"
        )
        print(format_timeline(timeline))
        if args.export:
            count = recorder.export_jsonl(args.export)
            validate_spans_jsonl(args.export)
            print(f"\n{count} spans exported to {args.export} (validated)")
        result = {
            "experiment": traced.experiment,
            "trial": traced.trial,
            "interconnect": traced.interconnect,
            "rid": rid,
            "spans_recorded": len(spans),
            "spans_evicted": recorder.dropped,
            "trace_digest": traced.trace_digest,
            "latency": timeline.latency,
        }
    else:  # pragma: no cover - argparse enforces choices
        raise AssertionError(args.experiment)

    if args.output:
        from repro.experiments.persistence import save_json

        path = save_json(result, args.output, label=args.experiment)
        print(f"\nresult saved to {path}")
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
