"""The BlueScale interconnect: a quadtree of Scale Elements (Sec. 3).

Clients sit at the leaves, the memory subsystem at the root.  Requests
climb the tree one SE per cycle (staged pipeline); each SE arbitrates
locally with its compositional scheduler.  Responses descend through
demultiplexers, modelled as one cycle per level.

Configuration: :meth:`BlueScaleInterconnect.configure` runs the
interface-selection composition for the attached client task sets and
programs every SE's server tasks through the parameter path.  The
distributed variant :meth:`configure_distributed` instead lets each
SE's own :class:`InterfaceSelector` resolve its local problem from its
children's announcements — same results, computed with local
information only, mirroring the hardware's parameter path.
"""

from __future__ import annotations

from repro.analysis.composition import (
    CompositionResult,
    compose,
    default_deadline_margin,
    tighten_deadlines,
    update_client,
)
from repro.analysis.interface_selection import DEFAULT_CONFIG, SelectionConfig
from repro.analysis.prm import ResourceInterface
from repro.core.scale_element import ScaleElement
from repro.errors import ConfigurationError
from repro.interconnects.base import Interconnect
from repro.memory.request import MemoryRequest
from repro.tasks.taskset import TaskSet
from repro.topology import NodeId, TreeTopology


class BlueScaleInterconnect(Interconnect):
    """Hierarchically distributed interconnect built from identical SEs."""

    name = "BlueScale"

    def __init__(
        self,
        n_clients: int,
        buffer_capacity: int = 8,
        leaf_table_depth: int = 64,
        fanout: int = 4,
    ) -> None:
        super().__init__(n_clients)
        self.topology = TreeTopology(n_clients=n_clients, fanout=fanout)
        self.elements: dict[NodeId, ScaleElement] = {}
        for node in self.topology.all_nodes():
            depth = (
                leaf_table_depth if node[0] == self.topology.depth else 16
            )
            self.elements[node] = ScaleElement(
                node,
                buffer_capacity=buffer_capacity,
                table_depth=depth,
                fanout=fanout,
            )
        self._wire_tree()
        # Root-first tick order gives one-cycle-per-hop pipelining.
        self._tick_order = [self.elements[n] for n in self.topology.all_nodes()]
        self.composition: CompositionResult | None = None
        # O(1) fabric occupancy (enters at a leaf, leaves at the root)
        # plus the last ticked cycle, so the quiescence veto check can
        # lazily reconcile stale SE counters before reading them.
        self._occupancy = 0
        self._cycle = -1
        # (cycle token, earliest element activity) computed by the last
        # successful quiescence scan, so next_activity_cycle right after
        # it does not walk the elements a second time.
        self._scan_cache: tuple[int, int | None] | None = None
        self._client_ingress = {
            client: (self.elements[leaf], port)
            for client in range(n_clients)
            for leaf, port in (self.topology.leaf_of_client(client),)
        }

    # -- wiring ----------------------------------------------------------------
    def _wire_tree(self) -> None:
        for node, element in self.elements.items():
            parent = self.topology.parent(node)
            if parent is None:
                element.forward_to_provider = self._root_forward
            else:
                port = node[1] % self.topology.fanout
                parent_element = self.elements[parent]
                element.forward_to_provider = self._make_hop(parent_element, port)

    @staticmethod
    def _make_hop(parent: ScaleElement, port: int):
        def hop(request: MemoryRequest, cycle: int) -> bool:
            return parent.try_accept(port, request, cycle)

        return hop

    def _root_forward(self, request: MemoryRequest, cycle: int) -> bool:
        if not self._provider_can_accept():
            return False
        self._forward_to_provider(request, cycle)
        self._occupancy -= 1
        return True

    # -- configuration -----------------------------------------------------------
    def configure(
        self,
        client_tasksets: dict[int, TaskSet],
        config: SelectionConfig = DEFAULT_CONFIG,
    ) -> CompositionResult:
        """Run the interface-selection composition and program all SEs."""
        result = compose(self.topology, client_tasksets, config)
        self.apply_composition(result)
        return result

    def configure_from_model(self, model) -> CompositionResult:
        """Program every SE from a prebuilt
        :class:`~repro.analysis.model.SystemModel`'s baseline.

        The model must describe this fabric exactly (same client count
        and fan-out); its already-composed hierarchy is applied without
        re-running any selection, so bringing up a simulated SoC from a
        shared model costs no analysis time.
        """
        if model.topology.fanout != self.topology.fanout:
            raise ConfigurationError(
                f"model was built for fanout {model.topology.fanout}, "
                f"fabric has fanout {self.topology.fanout}"
            )
        self.apply_composition(model.baseline)
        return model.baseline

    def apply_composition(self, result: CompositionResult) -> None:
        """Program every SE's server tasks from a composition result."""
        if result.topology.n_clients != self.n_clients:
            raise ConfigurationError(
                "composition was computed for a different client count"
            )
        for node, interfaces in result.interfaces.items():
            element = self.elements[node]
            for port, interface in enumerate(interfaces):
                element.program_port(port, interface, now=0)
        self.composition = result

    def reprogram_client(
        self,
        client_tasksets: dict[int, TaskSet],
        client_id: int,
        cycle: int,
        config: SelectionConfig = DEFAULT_CONFIG,
    ) -> CompositionResult:
        """Runtime parameter-path update after a task joins/leaves.

        The paper's scheduling-scalability property in action: only the
        SEs on ``client_id``'s memory-request path re-resolve their
        interface-selection problems and are reprogrammed (at ``cycle``,
        budgets restarting fresh); every other SE keeps running with
        untouched parameters.  Traffic already in flight is unaffected.
        """
        if self.composition is None:
            raise ConfigurationError(
                "reprogram_client needs an initial configure() first"
            )
        updated = update_client(
            self.composition, client_tasksets, client_id, config
        )
        for node in self.topology.path_to_root(client_id):
            element = self.elements[node]
            for port, interface in enumerate(updated.interfaces[node]):
                if interface != self.composition.interfaces[node][port]:
                    element.program_port(port, interface, now=cycle)
        self.composition = updated
        return updated

    def configure_distributed(
        self,
        client_tasksets: dict[int, TaskSet],
        config: SelectionConfig = DEFAULT_CONFIG,
    ) -> dict[NodeId, list[ResourceInterface]]:
        """Let each SE's interface selector resolve its own problem.

        Proceeds level by level from the leaves: each SE loads its local
        clients' task parameters into its parameter table, runs its
        selection, programs its own scheduler, and announces the
        resulting server tasks to its parent — exactly the paper's
        distributed parameter path.  Returns the programmed interfaces
        per SE (tests assert they match :func:`compose`).
        """
        topology = self.topology
        announced: dict[NodeId, list[ResourceInterface]] = {}
        for level in range(topology.depth, -1, -1):
            for order in range(topology.nodes_at_level(level)):
                node = (level, order)
                if node not in self.elements:
                    continue
                element = self.elements[node]
                element.selector.config = config
                for port in range(topology.fanout):
                    element.selector.clear_port(port)
                if level == topology.depth:
                    margin = default_deadline_margin(topology)
                    for port, client_id in enumerate(
                        range(order * topology.fanout, (order + 1) * topology.fanout)
                    ):
                        if client_id >= self.n_clients:
                            continue
                        taskset = tighten_deadlines(
                            client_tasksets.get(client_id, TaskSet()), margin
                        )
                        element.selector.load_taskset(port, taskset)
                else:
                    for port, child in enumerate(topology.children(node)):
                        for iface in announced.get(child, []):
                            if iface.budget > 0:
                                element.selector.load_task(
                                    port, iface.period, iface.budget
                                )
                selections = element.selector.run_selection()
                interfaces = [s.interface for s in selections]
                for port, interface in enumerate(interfaces):
                    element.program_port(port, interface, now=0)
                announced[node] = interfaces
        return announced

    # -- Interconnect contract -----------------------------------------------
    def try_inject(self, request: MemoryRequest, cycle: int) -> bool:
        element, port = self._client_ingress[request.client_id]
        accepted = element.try_accept(port, request, cycle)
        if accepted:
            self._occupancy += 1
            if request.inject_cycle < 0:
                request.inject_cycle = cycle
        return accepted

    def tick_request_path(self, cycle: int) -> None:
        self._cycle = cycle
        if self.fast_tick:
            # Empty SEs tick to pure counter ops (replayed lazily by
            # ScaleElement.sync_to), and budget-gated SEs are quiescent
            # until their cached wake cycle — the fast path elides both
            # calls.  The reference path ticks every SE every cycle.
            if not self._occupancy:
                return
            for element in self._tick_order:
                if element._occupancy and cycle >= element._wake:
                    element.tick(cycle)
            return
        for element in self._tick_order:
            element.tick(cycle)

    def response_latency(self, client_id: int) -> int:
        # One demux stage per SE level, plus the controller-to-root hop.
        return self.topology.hops_to_memory(client_id) + 1

    def requests_in_flight(self) -> int:
        return self._occupancy

    # -- quiescence --------------------------------------------------------------
    def is_quiescent(self) -> bool:
        if not self._occupancy:
            return True
        # An occupied SE whose cached wake is still ahead is provably
        # budget-gated; otherwise reconcile its counters (it may have
        # just received a hop while being skipped) and ask it.  The
        # element activities fall out of the same scan, so they are
        # cached for the next_activity_cycle call that follows a
        # successful check (the engine always pairs them).
        horizon = self._cycle + 1
        earliest: int | None = None
        for element in self._tick_order:
            if not element._occupancy:
                continue
            if horizon < element._wake:
                activity: int | None = element._wake
            else:
                activity = element.activity_if_quiescent(horizon)
                if activity is None:
                    return False
            if earliest is None or activity < earliest:
                earliest = activity
        self._scan_cache = (self._cycle, earliest)
        return True

    def next_activity_cycle(self, cycle: int) -> int | None:
        """Earliest of: a buffered response, or an SE budget replenishment
        that could release budget-gated traffic."""
        earliest = super().next_activity_cycle(cycle)
        if self._occupancy:
            cache = self._scan_cache
            if (
                cache is not None
                and cache[0] == self._cycle
                and cycle == self._cycle + 1
            ):
                activity = cache[1]
                if activity is not None and (
                    earliest is None or activity < earliest
                ):
                    earliest = activity
                return earliest
            for element in self._tick_order:
                if not element._occupancy:
                    continue
                if cycle < element._wake:
                    # The cached wake IS the SE's next activity.
                    activity = element._wake
                else:
                    activity = element.next_activity_cycle(cycle)
                if activity is not None and (
                    earliest is None or activity < earliest
                ):
                    earliest = activity
        return earliest

    def on_cycles_skipped(self, start: int, cycles: int) -> None:
        """No eager work: each SE replays its own counters lazily on the
        next cycle that touches it (:meth:`ScaleElement.sync_to`)."""

    def injection_blocked_until(self, client_id: int, cycle: int) -> int | None:
        """A full leaf port buffer refuses injections with no side
        effects; space only opens when the leaf SE forwards."""
        element, port = self._client_ingress[client_id]
        if element.buffers[port].full:
            return -1
        return None

    # -- introspection -----------------------------------------------------------
    def element(self, level: int, order: int) -> ScaleElement:
        return self.elements[(level, order)]

    @property
    def n_elements(self) -> int:
        return len(self.elements)
