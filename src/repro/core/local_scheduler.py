"""The SE local scheduler: server tasks + scheduling circuits (Sec. 4.2).

The local scheduler is the *upper* of the two nested priority queues.
Each of the four local-client ports is represented by a server task
``τ_X`` with interface ``(Π_X, Θ_X)`` realized by a P/B counter pair.
Every cycle the scheduling circuits pick, among server tasks that (a)
have remaining budget and (b) have a pending request in their port
buffer, the one with the earliest server deadline — the GEDF loop of
Algorithm 1.  The chosen server's port buffer then supplies its own
earliest-deadline request (the lower priority queue).

A port whose interface has zero budget (an idle VE) is treated as a
background server: it may forward only when no budgeted server is
ready, with the latest possible deadline.  This matches a conservative
hardware fallback and only matters for traffic that the interface
selection did not provision (tests exercise it; experiments never hit
it when the composition is schedulable).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.prm import ResourceInterface
from repro.core.counters import ServerCounterPair
from repro.core.random_access_buffer import RandomAccessBuffer
from repro.errors import ConfigurationError


@dataclass
class ServerTaskState:
    """One server task: its counters plus the absolute-deadline view."""

    interface: ResourceInterface
    counters: ServerCounterPair
    #: absolute cycle at which the current period ends (= EDF deadline)
    deadline: int

    @classmethod
    def create(cls, interface: ResourceInterface, now: int = 0) -> "ServerTaskState":
        period = max(interface.period, 1)
        counters = ServerCounterPair(period, interface.budget)
        return cls(interface=interface, counters=counters, deadline=now + period)

    @property
    def has_budget(self) -> bool:
        return self.counters.has_budget

    @property
    def is_idle_interface(self) -> bool:
        return self.interface.budget == 0

    def tick(self, now: int) -> None:
        """Advance the period logic one cycle (after scheduling at ``now``)."""
        replenished = self.counters.tick()
        if replenished:
            self.deadline = now + 1 + self.counters.period

    def skip_idle(self, start: int, cycles: int) -> None:
        """Reconcile ``cycles`` skipped ticks at ``start, start+1, ...``.

        Equivalent to calling :meth:`tick` with ``now = start + k`` for
        each ``k < cycles``, given the server forwarded nothing — the
        precondition the engine's quiescence leap guarantees.
        """
        last_replenish = self.counters.skip_idle(cycles)
        if last_replenish is not None:
            self.deadline = start + last_replenish + 1 + self.counters.period

    def consume(self) -> None:
        self.counters.consume()

    def reprogram(self, interface: ResourceInterface, now: int) -> None:
        """Parameter-path update: new (Π, Θ) takes effect immediately."""
        self.interface = interface
        period = max(interface.period, 1)
        self.counters.reprogram(period, interface.budget)
        self.deadline = now + period


class LocalScheduler:
    """Scheduling circuits over four server tasks (one per local port)."""

    def __init__(
        self, interfaces: list[ResourceInterface], now: int = 0
    ) -> None:
        if not interfaces:
            raise ConfigurationError("local scheduler needs at least one server")
        self.servers = [ServerTaskState.create(iface, now) for iface in interfaces]

    @property
    def n_ports(self) -> int:
        return len(self.servers)

    def reprogram_port(
        self, port: int, interface: ResourceInterface, now: int
    ) -> None:
        self.servers[port].reprogram(interface, now)

    def select_port(self, buffers: list[RandomAccessBuffer]) -> int | None:
        """Algorithm 1: pick the port whose request should be forwarded now.

        Returns the port index, or None when no port is ready.  Budgeted
        servers compete by earliest server deadline; zero-budget servers
        only when no budgeted server is ready (background).
        """
        if len(buffers) != len(self.servers):
            raise ConfigurationError(
                f"{len(buffers)} buffers for {len(self.servers)} servers"
            )
        best_port: int | None = None
        best_key: tuple[int, int] | None = None
        for port, (server, buffer) in enumerate(zip(self.servers, buffers)):
            if buffer.empty or server.is_idle_interface:
                continue
            if not server.has_budget:
                continue
            request_deadline = buffer.earliest_deadline()
            assert request_deadline is not None
            # Server deadlines first (Algorithm 1); equal server deadlines
            # fall back to the pending requests' own EDF order.
            key = (server.deadline, request_deadline)
            if best_key is None or key < best_key:
                best_port = port
                best_key = key
        if best_port is not None:
            return best_port
        # Background pass: un-provisioned traffic, earliest request deadline.
        fallback: int | None = None
        fallback_deadline = 0
        for port, (server, buffer) in enumerate(zip(self.servers, buffers)):
            if buffer.empty or not server.is_idle_interface:
                continue
            deadline = buffer.earliest_deadline()
            assert deadline is not None
            if fallback is None or deadline < fallback_deadline:
                fallback = port
                fallback_deadline = deadline
        return fallback

    def account_forward(self, port: int) -> None:
        """Budget consumption for a forward from ``port``."""
        server = self.servers[port]
        if not server.is_idle_interface:
            server.consume()

    def tick(self, now: int) -> None:
        """Advance all period counters by one cycle."""
        for server in self.servers:
            if not server.is_idle_interface:
                server.tick(now)

    def on_cycles_skipped(self, start: int, cycles: int) -> None:
        """Fast-forward every server's period logic over idle cycles."""
        for server in self.servers:
            if not server.is_idle_interface:
                server.skip_idle(start, cycles)
