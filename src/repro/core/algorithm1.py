"""A literal transcription of the paper's Algorithm 1.

The SE hardware (random-access buffers + local scheduler) *implements*
Algorithm 1; this module *is* Algorithm 1, line by line, over abstract
server tasks and jobs.  It exists so the hardware model can be checked
against the published pseudocode (see
``tests/core/test_algorithm1.py``), and as executable documentation.

Algorithm 1 (BlueScale scheduling under GEDF)::

    input : Ready(t), the ready server task set at time t
    output: Sched(t), the scheduled job at time t

    Sched(t) = ∅
    while (Sched(t) = ∅ & Ready(t) ≠ ∅):
        loop through Ready(t) to find the server task τ_X with the
            earliest deadline
        if τ_X has local tasks:
            loop through all local tasks in τ_X to find the local
                task τ_i with the earliest deadline
            if τ_i has a pending job τ_{i,j}:
                Sched(t) = τ_{i,j}
            else:
                remove τ_i from τ_X
        else:
            remove τ_X from Ready(t)
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class PendingJob:
    """τ_{i,j}: one pending job of a local task."""

    name: str
    deadline: int


@dataclass
class LocalTask:
    """τ_i: a local task holding (possibly empty) pending jobs."""

    name: str
    deadline: int
    jobs: list[PendingJob] = field(default_factory=list)

    def earliest_pending_job(self) -> PendingJob | None:
        if not self.jobs:
            return None
        return min(self.jobs, key=lambda job: job.deadline)


@dataclass
class ServerTask:
    """τ_X: a ready server task with its local tasks."""

    name: str
    deadline: int
    local_tasks: list[LocalTask] = field(default_factory=list)


def algorithm1(ready: list[ServerTask]) -> PendingJob | None:
    """Run Algorithm 1 over ``Ready(t)``; returns ``Sched(t)``.

    ``ready`` is mutated exactly as the pseudocode mutates its inputs:
    exhausted local tasks are removed from their server, and empty
    servers are removed from the ready set.
    """
    sched: PendingJob | None = None  # Sched(t) = ∅                 (line 1)
    while sched is None and ready:  # while Sched=∅ & Ready≠∅       (line 2)
        # server task with the earliest deadline                    (line 3)
        server = min(ready, key=lambda s: s.deadline)
        if server.local_tasks:  # if τ_X has local tasks            (line 4)
            # local task with the earliest deadline                 (line 5)
            local = min(server.local_tasks, key=lambda t: t.deadline)
            job = local.earliest_pending_job()
            if job is not None:  # if τ_i has a pending job         (line 6)
                sched = job  # Sched(t) = τ_{i,j}                   (line 7)
            else:
                server.local_tasks.remove(local)  # remove τ_i      (line 10)
        else:
            ready.remove(server)  # remove τ_X from Ready(t)        (line 14)
    return sched
