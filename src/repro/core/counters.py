"""P-counters and B-counters (paper Sec. 4.2, Fig. 3(b)).

Each server task in a Scale Element's local scheduler is realized by a
pair of countdown counters: the Period counter (P-counter) reloads
itself every Π cycles, and its zero-crossing resets the Budget counter
(B-counter) to Θ.  The B-counter decrements once per cycle in which the
server actually forwards a request; a non-zero B-counter means the
server still has capacity this period.

This module mirrors the register-level behaviour (program / reset /
enable ports) so tests can check the hardware semantics directly; the
higher-level :class:`~repro.core.local_scheduler.ServerTaskState` drives
the pair the way the scheduling circuits do.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


class CountdownCounter:
    """A 32-bit countdown counter with program/reset/enable ports.

    * ``program(value)`` — load a new reset value (the interface
      selector's parameter path writes Π or Θ here).
    * ``reset()`` — copy the reset value into the current value.
    * ``enable()`` — decrement by one on a clock edge (saturating at 0).
    * ``value`` — the V (value) output port.
    """

    WIDTH_BITS = 32

    def __init__(self, reset_value: int = 0) -> None:
        self._check_value(reset_value)
        self.reset_value = reset_value
        self.value = reset_value

    def _check_value(self, value: int) -> None:
        if not 0 <= value < (1 << self.WIDTH_BITS):
            raise ConfigurationError(
                f"counter value {value} outside 32-bit range"
            )

    def program(self, reset_value: int) -> None:
        """Update the reset value (takes effect at the next reset)."""
        self._check_value(reset_value)
        self.reset_value = reset_value

    def reset(self) -> None:
        self.value = self.reset_value

    def enable(self) -> int:
        """Clock edge with enable high: decrement (saturating), return value."""
        if self.value > 0:
            self.value -= 1
        return self.value

    @property
    def expired(self) -> bool:
        return self.value == 0


class ServerCounterPair:
    """A P-counter chained to a B-counter, as wired in Fig. 3(b).

    The P-counter's value output is connected to its own reset port and
    the B-counter's reset port: when the P-counter hits zero, both
    reload.  ``tick()`` models one clock edge of the period logic;
    ``consume()`` models the B-counter enable when the server forwards a
    request.
    """

    def __init__(self, period: int, budget: int) -> None:
        if period <= 0:
            raise ConfigurationError(f"Π must be positive, got {period}")
        if budget < 0 or budget > period:
            raise ConfigurationError(
                f"Θ={budget} must be within [0, Π={period}]"
            )
        self.p_counter = CountdownCounter(period)
        self.b_counter = CountdownCounter(budget)
        self.p_counter.reset()
        self.b_counter.reset()

    @property
    def period(self) -> int:
        return self.p_counter.reset_value

    @property
    def budget(self) -> int:
        return self.b_counter.reset_value

    @property
    def remaining_budget(self) -> int:
        return self.b_counter.value

    @property
    def cycles_to_replenish(self) -> int:
        return self.p_counter.value

    def reprogram(self, period: int, budget: int) -> None:
        """Parameter-path update of (Π, Θ); applied immediately."""
        if period <= 0:
            raise ConfigurationError(f"Π must be positive, got {period}")
        if budget < 0 or budget > period:
            raise ConfigurationError(f"Θ={budget} must be within [0, Π={period}]")
        self.p_counter.program(period)
        self.b_counter.program(budget)
        self.p_counter.reset()
        self.b_counter.reset()

    def tick(self) -> bool:
        """One clock edge of the period chain.

        Returns True when this edge replenished the budget (period
        boundary crossed).
        """
        self.p_counter.enable()
        if self.p_counter.expired:
            self.p_counter.reset()
            self.b_counter.reset()
            return True
        return False

    def consume(self) -> None:
        """B-counter enable: one unit of budget spent forwarding."""
        if self.b_counter.expired:
            raise ConfigurationError(
                "consume() with zero budget: scheduling circuit must gate this"
            )
        self.b_counter.enable()

    def skip_idle(self, cycles: int) -> int | None:
        """Fast-forward ``cycles`` idle ticks (no consume() in between).

        Produces exactly the state ``cycles`` calls to :meth:`tick`
        would leave behind.  Returns the 0-based offset (within the
        skipped window) of the *last* tick that replenished the budget,
        or None when no period boundary was crossed — the caller needs
        it to recompute the server's absolute EDF deadline.
        """
        if cycles <= 0:
            return None
        value = self.p_counter.value
        period = self.p_counter.reset_value
        if cycles < value:
            self.p_counter.value = value - cycles
            return None
        # First boundary after `value` ticks (offset value - 1), then
        # one every `period` ticks; the reset also reloads the B-counter.
        extra = cycles - value
        self.p_counter.value = period - (extra % period)
        self.b_counter.reset()
        return value - 1 + (extra // period) * period

    @property
    def has_budget(self) -> bool:
        """The XOR-gate check of Sec. 4.2: Θ remaining > 0."""
        return not self.b_counter.expired
