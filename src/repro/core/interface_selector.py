"""The SE interface selector (paper Sec. 4.3, Fig. 4).

Each Scale Element carries a small computation engine — a task
parameter table (register chain), a scratchpad, an ALU and an FSM —
that resolves the SE's interface-selection problem locally and passes
the resulting server-task parameters up the parameter path to the next
SE.  This module models that component faithfully enough to reproduce
its *behaviour* (bounded table, field widths, local-information-only
computation); the numerical algorithm itself is shared with
:mod:`repro.analysis.interface_selection`.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.analysis.interface_selection import (
    DEFAULT_CONFIG,
    SelectionConfig,
    select_interface,
)
from repro.analysis.prm import ResourceInterface
from repro.errors import CapacityError, ConfigurationError, InfeasibleError
from repro.tasks.task import PeriodicTask
from repro.tasks.taskset import TaskSet


@dataclass(frozen=True)
class TableEntry:
    """One 74-bit row of the task parameter table.

    Field widths follow Fig. 4: client id (2 bits), task id (8 bits),
    period (32 bits), execution time (32 bits).
    """

    client_id: int  # 2 bits: local port index 0..3
    task_id: int  # 8 bits
    period: int  # 32 bits
    wcet: int  # 32 bits

    def __post_init__(self) -> None:
        if not 0 <= self.client_id < 4:
            raise ConfigurationError(
                f"client id {self.client_id} does not fit the 2-bit field"
            )
        if not 0 <= self.task_id < 256:
            raise ConfigurationError(
                f"task id {self.task_id} does not fit the 8-bit field"
            )
        for label, value in (("period", self.period), ("wcet", self.wcet)):
            if not 0 < value < (1 << 32):
                raise ConfigurationError(
                    f"{label} {value} does not fit the 32-bit field"
                )

    def as_task(self) -> PeriodicTask:
        return PeriodicTask(
            period=self.period,
            wcet=self.wcet,
            name=f"tbl{self.client_id}.{self.task_id}",
            client_id=self.client_id,
        )


class TaskParameterTable:
    """Bounded register-chain table of local-task parameters.

    The paper configures depth 16 for SEs whose local clients are other
    SEs (4 ports x up to 4 server tasks); leaf SEs use whatever depth the
    application needs.
    """

    def __init__(self, depth: int = 16) -> None:
        if depth <= 0:
            raise ConfigurationError(f"table depth must be positive, got {depth}")
        self.depth = depth
        self._entries: list[TableEntry] = []

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.depth

    def load(self, entry: TableEntry) -> None:
        if self.full:
            raise CapacityError(
                f"task parameter table full (depth {self.depth})"
            )
        self._entries.append(entry)

    def clear(self) -> None:
        self._entries.clear()

    def clear_port(self, port: int) -> None:
        """Drop all entries of one local client (task join/leave update)."""
        self._entries = [e for e in self._entries if e.client_id != port]

    def entries_for_port(self, port: int) -> list[TableEntry]:
        return [e for e in self._entries if e.client_id == port]

    def taskset_for_port(self, port: int) -> TaskSet:
        return TaskSet([e.as_task() for e in self.entries_for_port(port)])


@dataclass(frozen=True)
class SelectedServer:
    """Parameter-path output: one port's server-task parameters."""

    port: int
    interface: ResourceInterface
    schedulable: bool


class InterfaceSelector:
    """The per-SE selection engine.

    Feed local task parameters with :meth:`load_task`, then call
    :meth:`run_selection` to compute all four ports' interfaces using
    only this SE's local information.  The outputs are simultaneously
    (a) the parameters programmed into this SE's local scheduler and
    (b) the "local task" parameters announced to the parent SE.
    """

    def __init__(
        self,
        n_ports: int = 4,
        table_depth: int = 16,
        config: SelectionConfig = DEFAULT_CONFIG,
    ) -> None:
        if n_ports <= 0:
            raise ConfigurationError(f"need at least one port, got {n_ports}")
        self.n_ports = n_ports
        self.table = TaskParameterTable(depth=table_depth)
        self.config = config
        self._next_task_id = [0] * n_ports

    def load_task(self, port: int, period: int, wcet: int) -> TableEntry:
        """Append one local task's parameters for ``port``."""
        if not 0 <= port < self.n_ports:
            raise ConfigurationError(f"port {port} out of range")
        entry = TableEntry(
            client_id=port,
            task_id=self._next_task_id[port] % 256,
            period=period,
            wcet=wcet,
        )
        self._next_task_id[port] += 1
        self.table.load(entry)
        return entry

    def load_taskset(self, port: int, taskset: TaskSet) -> None:
        for task in taskset:
            self.load_task(port, task.period, task.wcet)

    def clear_port(self, port: int) -> None:
        self.table.clear_port(port)
        self._next_task_id[port] = 0

    def run_selection(self) -> list[SelectedServer]:
        """Resolve this SE's interface selection problem (all ports).

        Ports with no tasks get the idle interface; ports whose task set
        admits no schedulable interface are flagged and given a
        half-period full-budget fallback, mirroring
        :func:`repro.analysis.composition.compose`.
        """
        port_sets = [self.table.taskset_for_port(p) for p in range(self.n_ports)]
        total_util = sum((ts.utilization for ts in port_sets), Fraction(0))
        outputs: list[SelectedServer] = []
        for port, taskset in enumerate(port_sets):
            if len(taskset) == 0:
                outputs.append(
                    SelectedServer(port, ResourceInterface(1, 0), True)
                )
                continue
            sibling_util = total_util - taskset.utilization
            try:
                result = select_interface(taskset, sibling_util, self.config)
                outputs.append(SelectedServer(port, result.interface, True))
            except InfeasibleError:
                fallback_period = max(taskset.min_period // 2, 1)
                outputs.append(
                    SelectedServer(
                        port,
                        ResourceInterface(fallback_period, fallback_period),
                        False,
                    )
                )
        return outputs
