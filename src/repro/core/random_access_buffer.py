"""Random access buffers (paper Sec. 4.1, Fig. 2(c)).

The low-level priority queue of a Scale Element.  Unlike a FIFO, the
buffer's arbiter (comparators over the stored parameters) can fetch the
highest-priority entry regardless of arrival order — here, the request
with the earliest absolute deadline (EDF, with the request id breaking
ties deterministically, mirroring the fixed comparator chain).

The hardware holds entries in a register chain of fixed depth; a full
buffer refuses the loader, which is how backpressure propagates down
the tree.
"""

from __future__ import annotations

from repro.errors import CapacityError, ConfigurationError
from repro.memory.request import MemoryRequest


class RandomAccessBuffer:
    """Fixed-capacity random-access priority buffer over memory requests."""

    def __init__(self, capacity: int = 8) -> None:
        if capacity <= 0:
            raise ConfigurationError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: list[MemoryRequest] = []
        self.peak_occupancy = 0
        self.total_loaded = 0

    # -- loader ----------------------------------------------------------------
    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def load(self, request: MemoryRequest) -> None:
        """Store a request into a free register-bank slot."""
        if self.full:
            raise CapacityError(
                f"random access buffer full (capacity {self.capacity})"
            )
        self._entries.append(request)
        self.total_loaded += 1
        if len(self._entries) > self.peak_occupancy:
            self.peak_occupancy = len(self._entries)

    def try_load(self, request: MemoryRequest) -> bool:
        """Load unless full; returns whether the request was accepted."""
        if self.full:
            return False
        self.load(request)
        return True

    # -- arbiter / fetcher -------------------------------------------------------
    def peek_highest_priority(self) -> MemoryRequest | None:
        """The comparator tree's current winner (None when empty)."""
        if not self._entries:
            return None
        return min(self._entries, key=lambda r: r.priority_key)

    def fetch_highest_priority(self) -> MemoryRequest:
        """Remove and return the highest-priority request."""
        if not self._entries:
            raise CapacityError("fetch from an empty random access buffer")
        winner = min(self._entries, key=lambda r: r.priority_key)
        self._entries.remove(winner)
        return winner

    def earliest_deadline(self) -> int | None:
        """Deadline of the current winner (None when empty)."""
        winner = self.peek_highest_priority()
        return None if winner is None else winner.absolute_deadline

    # -- metric support ----------------------------------------------------------
    def waiting_requests(self) -> list[MemoryRequest]:
        """Snapshot of buffered requests (for blocking accounting)."""
        return list(self._entries)

    # -- quiescence ------------------------------------------------------------
    def is_quiescent(self) -> bool:
        """An empty buffer offers nothing to arbitrate — pure no-op."""
        return not self._entries
