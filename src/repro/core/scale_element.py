"""The Scale Element (paper Sec. 3.1 and 4, Fig. 2(b)).

An SE wires together the two nested priority queues:

* **lower level** — one :class:`RandomAccessBuffer` per local client
  port, each delivering its earliest-deadline request;
* **upper level** — the :class:`LocalScheduler`'s server tasks, which
  gate each port by its VE budget and compete under EDF (Algorithm 1).

Each cycle an SE forwards at most one request toward its local
provider (the parent SE's port buffer, or the memory controller at the
root).  Forwarding respects provider backpressure: the winning request
is only fetched when the provider can accept it, so nothing is dropped
inside the tree.
"""

from __future__ import annotations

from typing import Callable

from repro.analysis.prm import ResourceInterface
from repro.core.interface_selector import InterfaceSelector
from repro.core.local_scheduler import LocalScheduler
from repro.core.random_access_buffer import RandomAccessBuffer
from repro.errors import ConfigurationError
from repro.memory.request import MemoryRequest
from repro.topology import NodeId

#: provider-side hook: returns True when it consumed the request
ForwardHook = Callable[[MemoryRequest, int], bool]


class ScaleElement:
    """One Scale Element of the BlueScale tree.

    The paper's SEs are 4-to-1 (quadtree); ``fanout`` generalizes the
    element for design-space studies (e.g. the binary-fanout ablation).
    """

    FANOUT = 4

    def __init__(
        self,
        node: NodeId,
        buffer_capacity: int = 8,
        table_depth: int = 16,
        interfaces: list[ResourceInterface] | None = None,
        fanout: int | None = None,
    ) -> None:
        self.fanout = fanout if fanout is not None else self.FANOUT
        if self.fanout < 2:
            raise ConfigurationError(f"SE fanout must be >= 2, got {self.fanout}")
        if interfaces is None:
            # Until configured, every port gets a background (idle)
            # interface: traffic still flows, EDF order only.
            interfaces = [ResourceInterface(1, 0)] * self.fanout
        if len(interfaces) != self.fanout:
            raise ConfigurationError(
                f"SE needs {self.fanout} interfaces, got {len(interfaces)}"
            )
        self.node = node
        #: observability site label (precomputed; used only for traced
        #: requests, via ``request.trace_ctx`` duck typing)
        self._site = f"se:{node[0]}:{node[1]}"
        self.buffers = [
            RandomAccessBuffer(buffer_capacity) for _ in range(self.fanout)
        ]
        self.scheduler = LocalScheduler(interfaces)
        self.selector = InterfaceSelector(
            n_ports=self.fanout, table_depth=table_depth
        )
        self.forward_to_provider: ForwardHook | None = None
        self.forwarded = 0
        self.stalled_cycles = 0
        # O(1) occupancy (requests across all port buffers) and the
        # first cycle whose scheduler tick has not been applied yet.
        # Idle scheduler ticks are reconciled lazily: an empty SE's tick
        # is select_port(None) plus a counter op, so the fast path may
        # skip the call entirely and replay the counters on the next
        # cycle that matters (:meth:`sync_to`).
        self._occupancy = 0
        self._synced_until = 0
        # First cycle whose scheduling decision can differ from "no
        # forward".  Set by tick() when select_port comes up empty
        # (empty or budget-gated SE: the earliest replenishment among
        # occupied ports), reset to 0 by any arrival or reprogramming.
        # While cycle < _wake the SE is provably quiescent and the fast
        # path skips its tick.
        self._wake = 0

    # -- local client ports ----------------------------------------------------
    def try_accept(
        self, port: int, request: MemoryRequest, cycle: int = 0
    ) -> bool:
        """Local-client-port ingress (loader side of the port buffer).

        ``cycle`` is only consumed by the observability span of a traced
        request; untraced traffic ignores it (callers that predate the
        tracing layer may omit it).
        """
        if not 0 <= port < self.fanout:
            raise ConfigurationError(f"port {port} out of range")
        accepted = self.buffers[port].try_load(request)
        if accepted:
            self._occupancy += 1
            self._wake = 0  # a new request may change the next decision
            ctx = request.trace_ctx
            if ctx is not None:
                ctx.emit(
                    self._site,
                    "enqueue",
                    cycle,
                    {"port": port, "occupancy": self._occupancy},
                )
        return accepted

    def port_free(self, port: int) -> bool:
        return not self.buffers[port].full

    # -- parameter path ----------------------------------------------------------
    def program_port(
        self, port: int, interface: ResourceInterface, now: int = 0
    ) -> None:
        """Program one server task's (Π, Θ) via the parameter path."""
        self.sync_to(now)
        self.scheduler.reprogram_port(port, interface, now)
        self._wake = 0  # fresh budgets invalidate any cached gating

    def interfaces(self) -> list[ResourceInterface]:
        return [server.interface for server in self.scheduler.servers]

    # -- request path ------------------------------------------------------------
    def tick(self, cycle: int) -> None:
        """One cycle: scheduling decision, forward, counter update."""
        self.sync_to(cycle)
        port = self.scheduler.select_port(self.buffers)
        if port is not None:
            buffer = self.buffers[port]
            winner = buffer.peek_highest_priority()
            assert winner is not None
            if self.forward_to_provider is not None and self.forward_to_provider(
                winner, cycle
            ):
                buffer.fetch_highest_priority()
                self._occupancy -= 1
                self.scheduler.account_forward(port)
                self.forwarded += 1
                ctx = winner.trace_ctx
                if ctx is not None:
                    ctx.emit(
                        self._site, "arbitration_win", cycle, {"port": port}
                    )
                self._charge_blocking(winner)
            else:
                self.stalled_cycles += 1
        self.scheduler.tick(cycle)
        self._synced_until = cycle + 1
        if port is None:
            # select_port returning None means every occupied port was
            # budget-gated at this cycle's decision.  A replenishment
            # may have landed during the counter update just above, so
            # gate on has_budget before trusting the replenish distance.
            wake = 1 << 62
            for buffer_port, buffer in enumerate(self.buffers):
                if buffer.is_quiescent():
                    continue
                counters = self.scheduler.servers[buffer_port].counters
                if counters.has_budget:
                    wake = cycle + 1
                    break
                replenish = cycle + 1 + counters.cycles_to_replenish
                if replenish < wake:
                    wake = replenish
            self._wake = wake
        else:
            self._wake = 0

    # -- fault hook ---------------------------------------------------------
    def flip_budget_bit(
        self, cycle: int, port: int, bit: int, counter: str = "budget"
    ) -> int:
        """Transient single-event upset in one server's counter pair.

        Reconciles the scheduler to ``cycle`` first (the flip lands on
        real, up-to-date state, not on lazily-deferred counters), then
        inverts bit ``bit`` of the selected counter's value register.
        Resets the quiescence wake cache: the corrupted counter may
        change the very next scheduling decision.  Returns the new
        counter value (for the fault ledger/span).
        """
        if not 0 <= port < self.fanout:
            raise ConfigurationError(f"port {port} out of range")
        if not 0 <= bit < 32:
            raise ConfigurationError(f"bit index must be in [0, 32), got {bit}")
        if counter not in ("budget", "period"):
            raise ConfigurationError(
                f"counter must be 'budget' or 'period', got {counter!r}"
            )
        self.sync_to(cycle)
        counters = self.scheduler.servers[port].counters
        target = counters.b_counter if counter == "budget" else counters.p_counter
        target.value ^= 1 << bit
        self._wake = 0
        return target.value

    def sync_to(self, cycle: int) -> None:
        """Replay elided idle scheduler ticks for cycles < ``cycle``.

        Only ever called with a gap when the SE sat empty (the fast
        path skipped its ticks) — each elided tick was select_port over
        empty buffers (None) plus one counter step, which
        ``LocalScheduler.on_cycles_skipped`` reproduces exactly.
        """
        gap = cycle - self._synced_until
        if gap > 0:
            self.scheduler.on_cycles_skipped(self._synced_until, gap)
            self._synced_until = cycle

    def _charge_blocking(self, forwarded: MemoryRequest) -> None:
        """Charge priority inversion to eligible waiting requests.

        A waiting request is *blocked by a lower-priority request* when
        a later-deadline request is forwarded while it (a) has an
        earlier deadline and (b) was eligible — its server still had
        budget (a port waiting only because its VE budget is exhausted
        is being shaped by its reservation, not blocked by lower-
        priority traffic).
        """
        key = forwarded.priority_key
        for port, buffer in enumerate(self.buffers):
            server = self.scheduler.servers[port]
            if not (server.is_idle_interface or server.has_budget):
                continue
            for request in buffer.waiting_requests():
                if request.priority_key < key:
                    request.charge_blocking()

    # -- quiescence --------------------------------------------------------------
    def is_quiescent(self) -> bool:
        """True when a tick only advances the P/B counters.

        That covers two cases, both reproduced exactly by
        :meth:`on_cycles_skipped`:

        * every port buffer is empty (nothing to schedule), or
        * every occupied port is *budget-gated*: its server is a
          provisioned one whose B-counter is exhausted, so
          ``select_port`` returns None (no forward, no stall count, no
          blocking charge) until a replenishment —
          :meth:`next_activity_cycle` pins the earliest one.
        """
        if not self._occupancy:
            return True
        for port, buffer in enumerate(self.buffers):
            if buffer.is_quiescent():
                continue
            server = self.scheduler.servers[port]
            if server.is_idle_interface or server.has_budget:
                return False
        return True

    def activity_if_quiescent(self, cycle: int) -> int | None:
        """Fused quiescence + activity scan: one pass over the ports.

        Returns None when the SE is *not* quiescent, else the earliest
        budget replenishment among occupied ports — the same values
        :meth:`is_quiescent` and :meth:`next_activity_cycle` produce,
        computed without walking the ports twice.  Callers must ensure
        the SE is occupied (empty SEs have no activity of their own).
        """
        self.sync_to(cycle)
        earliest = 1 << 62
        for port, buffer in enumerate(self.buffers):
            if buffer.is_quiescent():
                continue
            server = self.scheduler.servers[port]
            if server.is_idle_interface or server.has_budget:
                return None
            replenish = cycle + server.counters.cycles_to_replenish
            if replenish < earliest:
                earliest = replenish
        return earliest

    def next_activity_cycle(self, cycle: int) -> int | None:
        """Earliest select_port() that could forward: the first budget
        replenishment among occupied, budget-gated ports.

        With the P-counter at ``v``, the zero-crossing happens on the
        tick at ``cycle + v - 1`` (a pure counter op, reconciled by
        :meth:`sync_to`), so ``cycle + v`` is the first tick whose
        scheduling decision can differ — the exact wake cycle.
        """
        if not self._occupancy:
            return None
        self.sync_to(cycle)
        earliest: int | None = None
        for port, buffer in enumerate(self.buffers):
            if buffer.is_quiescent():
                continue
            replenish = cycle + self.scheduler.servers[port].counters.cycles_to_replenish
            if earliest is None or replenish < earliest:
                earliest = replenish
        return earliest

    # -- introspection -----------------------------------------------------------
    def occupancy(self) -> int:
        return sum(len(buffer) for buffer in self.buffers)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        level, order = self.node
        return f"<SE({level},{order}) occ={self.occupancy()} fwd={self.forwarded}>"
