"""The Scale Element (paper Sec. 3.1 and 4, Fig. 2(b)).

An SE wires together the two nested priority queues:

* **lower level** — one :class:`RandomAccessBuffer` per local client
  port, each delivering its earliest-deadline request;
* **upper level** — the :class:`LocalScheduler`'s server tasks, which
  gate each port by its VE budget and compete under EDF (Algorithm 1).

Each cycle an SE forwards at most one request toward its local
provider (the parent SE's port buffer, or the memory controller at the
root).  Forwarding respects provider backpressure: the winning request
is only fetched when the provider can accept it, so nothing is dropped
inside the tree.
"""

from __future__ import annotations

from typing import Callable

from repro.analysis.prm import ResourceInterface
from repro.core.interface_selector import InterfaceSelector
from repro.core.local_scheduler import LocalScheduler
from repro.core.random_access_buffer import RandomAccessBuffer
from repro.errors import ConfigurationError
from repro.memory.request import MemoryRequest
from repro.topology import NodeId

#: provider-side hook: returns True when it consumed the request
ForwardHook = Callable[[MemoryRequest, int], bool]


class ScaleElement:
    """One Scale Element of the BlueScale tree.

    The paper's SEs are 4-to-1 (quadtree); ``fanout`` generalizes the
    element for design-space studies (e.g. the binary-fanout ablation).
    """

    FANOUT = 4

    def __init__(
        self,
        node: NodeId,
        buffer_capacity: int = 8,
        table_depth: int = 16,
        interfaces: list[ResourceInterface] | None = None,
        fanout: int | None = None,
    ) -> None:
        self.fanout = fanout if fanout is not None else self.FANOUT
        if self.fanout < 2:
            raise ConfigurationError(f"SE fanout must be >= 2, got {self.fanout}")
        if interfaces is None:
            # Until configured, every port gets a background (idle)
            # interface: traffic still flows, EDF order only.
            interfaces = [ResourceInterface(1, 0)] * self.fanout
        if len(interfaces) != self.fanout:
            raise ConfigurationError(
                f"SE needs {self.fanout} interfaces, got {len(interfaces)}"
            )
        self.node = node
        self.buffers = [
            RandomAccessBuffer(buffer_capacity) for _ in range(self.fanout)
        ]
        self.scheduler = LocalScheduler(interfaces)
        self.selector = InterfaceSelector(
            n_ports=self.fanout, table_depth=table_depth
        )
        self.forward_to_provider: ForwardHook | None = None
        self.forwarded = 0
        self.stalled_cycles = 0

    # -- local client ports ----------------------------------------------------
    def try_accept(self, port: int, request: MemoryRequest) -> bool:
        """Local-client-port ingress (loader side of the port buffer)."""
        if not 0 <= port < self.fanout:
            raise ConfigurationError(f"port {port} out of range")
        return self.buffers[port].try_load(request)

    def port_free(self, port: int) -> bool:
        return not self.buffers[port].full

    # -- parameter path ----------------------------------------------------------
    def program_port(
        self, port: int, interface: ResourceInterface, now: int = 0
    ) -> None:
        """Program one server task's (Π, Θ) via the parameter path."""
        self.scheduler.reprogram_port(port, interface, now)

    def interfaces(self) -> list[ResourceInterface]:
        return [server.interface for server in self.scheduler.servers]

    # -- request path ------------------------------------------------------------
    def tick(self, cycle: int) -> None:
        """One cycle: scheduling decision, forward, counter update."""
        port = self.scheduler.select_port(self.buffers)
        if port is not None:
            buffer = self.buffers[port]
            winner = buffer.peek_highest_priority()
            assert winner is not None
            if self.forward_to_provider is not None and self.forward_to_provider(
                winner, cycle
            ):
                buffer.fetch_highest_priority()
                self.scheduler.account_forward(port)
                self.forwarded += 1
                self._charge_blocking(winner)
            else:
                self.stalled_cycles += 1
        self.scheduler.tick(cycle)

    def _charge_blocking(self, forwarded: MemoryRequest) -> None:
        """Charge priority inversion to eligible waiting requests.

        A waiting request is *blocked by a lower-priority request* when
        a later-deadline request is forwarded while it (a) has an
        earlier deadline and (b) was eligible — its server still had
        budget (a port waiting only because its VE budget is exhausted
        is being shaped by its reservation, not blocked by lower-
        priority traffic).
        """
        key = forwarded.priority_key
        for port, buffer in enumerate(self.buffers):
            server = self.scheduler.servers[port]
            if not (server.is_idle_interface or server.has_budget):
                continue
            for request in buffer.waiting_requests():
                if request.priority_key < key:
                    request.charge_blocking()

    # -- introspection -----------------------------------------------------------
    def occupancy(self) -> int:
        return sum(len(buffer) for buffer in self.buffers)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        level, order = self.node
        return f"<SE({level},{order}) occ={self.occupancy()} fwd={self.forwarded}>"
