"""BlueScale core: Scale Elements, nested priority queues, quadtree."""

from repro.core.counters import CountdownCounter, ServerCounterPair
from repro.core.random_access_buffer import RandomAccessBuffer
from repro.core.local_scheduler import LocalScheduler, ServerTaskState
from repro.core.interface_selector import (
    InterfaceSelector,
    SelectedServer,
    TableEntry,
    TaskParameterTable,
)
from repro.core.scale_element import ScaleElement
from repro.core.interconnect import BlueScaleInterconnect
from repro.core.algorithm1 import LocalTask, PendingJob, ServerTask, algorithm1
from repro.core.multi_memory import (
    AddressInterleaver,
    MultiMemoryResult,
    MultiMemorySystem,
    run_multi_memory_trial,
)

__all__ = [
    "LocalTask",
    "PendingJob",
    "ServerTask",
    "algorithm1",
    "AddressInterleaver",
    "MultiMemoryResult",
    "MultiMemorySystem",
    "run_multi_memory_trial",
    "CountdownCounter",
    "ServerCounterPair",
    "RandomAccessBuffer",
    "LocalScheduler",
    "ServerTaskState",
    "InterfaceSelector",
    "SelectedServer",
    "TableEntry",
    "TaskParameterTable",
    "ScaleElement",
    "BlueScaleInterconnect",
]
