"""Multi-memory BlueScale: one Scale-Element tree per memory channel.

The paper's related work (Meshed BlueTree, Wang et al. TCAD 2020)
extends tree interconnects to multiple memories; this module provides
the BlueScale equivalent: ``M`` memory channels, each behind its own
quadtree of SEs, with client traffic routed to channels by address
interleaving.  Aggregate memory bandwidth scales with ``M`` while each
channel keeps BlueScale's per-channel compositional guarantees.

Analysis model: a task's burst stays inside one interleave granule (the
clients' burst addresses span well under the granule size), so each
task has a *home channel* determined by its base address; each
channel's composition sees exactly the tasks homed on it.

Known analysis gap: the client's memory port is shared by all channels
(one transaction per channel per cycle, but a common pending queue), a
coupling the per-channel compositions do not model.  In measurements it
contributes about a percent of residual deadline misses near capacity;
see ``tests/core/test_multi_memory.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.composition import CompositionResult
from repro.analysis.interface_selection import DEFAULT_CONFIG, SelectionConfig
from repro.clients.traffic_generator import TrafficGenerator
from repro.core.interconnect import BlueScaleInterconnect
from repro.errors import ConfigurationError, SimulationError
from repro.memory.controller import MemoryController
from repro.memory.dram import FixedLatencyDevice
from repro.memory.request import MemoryRequest, reset_request_ids
from repro.sim.stats import LatencyRecorder
from repro.tasks.taskset import TaskSet


class AddressInterleaver:
    """Maps addresses to memory channels by power-of-two granules."""

    def __init__(self, n_channels: int, granule_bytes: int = 1 << 16) -> None:
        if n_channels < 1:
            raise ConfigurationError(
                f"need at least one channel, got {n_channels}"
            )
        if granule_bytes <= 0 or granule_bytes & (granule_bytes - 1):
            raise ConfigurationError(
                f"granule must be a positive power of two, got {granule_bytes}"
            )
        self.n_channels = n_channels
        self.granule_bytes = granule_bytes

    def channel_of(self, address: int) -> int:
        return (address // self.granule_bytes) % self.n_channels


@dataclass
class MultiMemoryResult:
    """Trial outcome of a multi-channel simulation."""

    recorder: LatencyRecorder
    per_channel_completed: list[int]
    requests_released: int = 0
    requests_dropped: int = 0
    requests_in_flight: int = 0

    @property
    def deadline_miss_ratio(self) -> float:
        return self.recorder.deadline_miss_ratio

    @property
    def requests_completed(self) -> int:
        return self.recorder.completed

    def channel_balance(self) -> float:
        """min/max completed-per-channel ratio (1.0 = perfectly even)."""
        busiest = max(self.per_channel_completed)
        if busiest == 0:
            return 1.0
        return min(self.per_channel_completed) / busiest


class MultiMemorySystem:
    """``M`` BlueScale trees, one per memory channel, shared clients.

    Each client owns one ingress per channel (hardware: a channel
    demux at the client's memory port).  Clients still issue at most
    one transaction per cycle; the interleaver picks the tree.
    """

    def __init__(
        self,
        n_clients: int,
        n_channels: int = 2,
        buffer_capacity: int = 2,
        granule_bytes: int = 1 << 16,
        controller_factory=None,  # noqa: ANN001 - optional hook
    ) -> None:
        if n_channels < 1:
            raise ConfigurationError("need at least one channel")
        self.n_clients = n_clients
        self.interleaver = AddressInterleaver(n_channels, granule_bytes)
        self.trees = [
            BlueScaleInterconnect(n_clients, buffer_capacity=buffer_capacity)
            for _ in range(n_channels)
        ]
        make_controller = controller_factory or (
            lambda: MemoryController(FixedLatencyDevice(1), queue_capacity=4)
        )
        self.controllers = [make_controller() for _ in range(n_channels)]
        for tree, controller in zip(self.trees, self.controllers):
            tree.attach_controller(controller)
        self.compositions: list[CompositionResult] | None = None

    @property
    def n_channels(self) -> int:
        return len(self.trees)

    # -- analysis ------------------------------------------------------------
    def split_tasksets_by_channel(
        self, client_tasksets: dict[int, TaskSet]
    ) -> list[dict[int, TaskSet]]:
        """Partition each client's tasks to their home channels.

        A task's home channel follows its burst base address, which the
        traffic generators derive from the client id and the task's
        index within the client (see ``TrafficGenerator``).
        """
        per_channel: list[dict[int, TaskSet]] = [
            {} for _ in range(self.n_channels)
        ]
        for client, taskset in client_tasksets.items():
            base = client * (1 << 24)
            for index, task in enumerate(taskset):
                address = base + (index << 16)
                channel = self.interleaver.channel_of(address)
                per_channel[channel].setdefault(client, TaskSet()).add(task)
        return per_channel

    def configure(
        self,
        client_tasksets: dict[int, TaskSet],
        config: SelectionConfig = DEFAULT_CONFIG,
    ) -> list[CompositionResult]:
        """Compose each channel's tree for the tasks homed on it."""
        per_channel = self.split_tasksets_by_channel(client_tasksets)
        self.compositions = [
            tree.configure(tasksets, config)
            for tree, tasksets in zip(self.trees, per_channel)
        ]
        return self.compositions

    @property
    def schedulable(self) -> bool:
        if self.compositions is None:
            raise ConfigurationError("configure() has not run")
        return all(c.schedulable for c in self.compositions)

    # -- datapath ------------------------------------------------------------
    def try_inject(self, request: MemoryRequest, cycle: int) -> bool:
        channel = self.interleaver.channel_of(request.address)
        return self.trees[channel].try_inject(request, cycle)

    def tick(self, cycle: int) -> list[MemoryRequest]:
        """Advance every channel one cycle; returns delivered responses."""
        delivered: list[MemoryRequest] = []
        for tree, controller in zip(self.trees, self.controllers):
            tree.tick_request_path(cycle)
            controller.tick(cycle)
            delivered.extend(tree.tick_response_path(cycle))
        return delivered

    def requests_in_flight(self) -> int:
        return sum(
            tree.requests_in_flight()
            + tree.responses_in_flight()
            + controller.in_flight
            for tree, controller in zip(self.trees, self.controllers)
        )


def run_multi_memory_trial(
    clients: list[TrafficGenerator],
    system: MultiMemorySystem,
    horizon: int,
    drain: int | None = None,
) -> MultiMemoryResult:
    """Simulate one trial on a multi-channel system."""
    if not clients:
        raise ConfigurationError("need at least one client")
    if drain is None:
        drain = min(4 * horizon, 20_000)
    reset_request_ids()
    by_id = {client.client_id: client for client in clients}
    recorder = LatencyRecorder()
    per_channel_completed = [0] * system.n_channels
    for cycle in range(horizon + drain):
        if cycle < horizon:
            for client in clients:
                # one injection opportunity per channel; skip blocked
                # heads so one congested channel cannot starve the rest
                client.tick(
                    cycle,
                    system.try_inject,
                    max_injections=system.n_channels,
                    probe_limit=2 * system.n_channels,
                )
        for request in system.tick(cycle):
            recorder.record_completion(
                request.response_time,
                request.blocking_cycles,
                request.met_deadline,
            )
            channel = system.interleaver.channel_of(request.address)
            per_channel_completed[channel] += 1
            owner = by_id.get(request.client_id)
            if owner is None:
                raise SimulationError(
                    f"response for unknown client {request.client_id}"
                )
            owner.on_response(request)
    released = sum(client.released_requests for client in clients)
    dropped = sum(client.dropped_requests for client in clients)
    for _ in range(dropped):
        recorder.record_drop()
    in_flight = system.requests_in_flight() + sum(
        client.pending_count for client in clients
    )
    if recorder.completed + dropped + in_flight != released:
        raise SimulationError(
            f"conservation violated: released={released}, "
            f"completed={recorder.completed}, dropped={dropped}, "
            f"in_flight={in_flight}"
        )
    return MultiMemoryResult(
        recorder=recorder,
        per_channel_completed=per_channel_completed,
        requests_released=released,
        requests_dropped=dropped,
        requests_in_flight=in_flight,
    )
