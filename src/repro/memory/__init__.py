"""Shared memory subsystem: transactions, DRAM device, controller."""

from repro.memory.request import MemoryRequest, RequestKind, reset_request_ids
from repro.memory.dram import DramDevice, DramTiming, FixedLatencyDevice
from repro.memory.controller import ArbitrationPolicy, MemoryController

__all__ = [
    "MemoryRequest",
    "RequestKind",
    "reset_request_ids",
    "DramDevice",
    "DramTiming",
    "FixedLatencyDevice",
    "ArbitrationPolicy",
    "MemoryController",
]
