"""Memory transactions.

A :class:`MemoryRequest` carries everything the interconnects and the
memory controller need, plus the lifecycle timestamps the evaluation
metrics are computed from:

* *response time* — completion minus release;
* *blocking latency* (Fig. 6) — cycles the request spent queued behind
  a lower-priority (later-deadline) request being serviced or forwarded
  at some shared arbiter.  Every arbiter in every interconnect model
  charges blocking through :meth:`MemoryRequest.charge_blocking`, so the
  metric is comparable across designs.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from repro.errors import ProtocolError


class RequestKind(enum.Enum):
    """Transaction direction."""

    READ = "read"
    WRITE = "write"


_request_ids = itertools.count()


def reset_request_ids() -> None:
    """Restart the global request-id counter (between trials, for
    reproducible ids in logs and tests)."""
    global _request_ids
    _request_ids = itertools.count()


@dataclass(slots=True)
class MemoryRequest:
    """One memory transaction travelling through an interconnect."""

    client_id: int
    release_cycle: int
    absolute_deadline: int
    kind: RequestKind = RequestKind.READ
    address: int = 0
    size_bytes: int = 64
    task_name: str = ""
    rid: int = field(default=-1)

    # lifecycle timestamps (cycle numbers; -1 = not reached yet)
    inject_cycle: int = -1
    arrive_controller_cycle: int = -1
    service_start_cycle: int = -1
    service_end_cycle: int = -1
    complete_cycle: int = -1

    # accumulated metrics
    blocking_cycles: int = 0

    # observability: emission handle set by repro.observability.Tracer
    # when the request is sampled for tracing; None means untraced and
    # every component's guard (`if request.trace_ctx is not None`)
    # stays false at the cost of one attribute load.  The field is
    # typed loosely so the hot path never imports the tracer package.
    trace_ctx: object | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.rid < 0:
            self.rid = next(_request_ids)
        if self.absolute_deadline <= self.release_cycle:
            raise ProtocolError(
                f"request {self.rid}: deadline {self.absolute_deadline} not "
                f"after release {self.release_cycle}"
            )

    # -- priority ------------------------------------------------------------
    @property
    def priority_key(self) -> tuple[int, int]:
        """EDF priority: earlier absolute deadline wins; rid breaks ties."""
        return (self.absolute_deadline, self.rid)

    def higher_priority_than(self, other: "MemoryRequest") -> bool:
        return self.priority_key < other.priority_key

    # -- metric bookkeeping ----------------------------------------------------
    def charge_blocking(self, cycles: int = 1) -> None:
        """Charge priority-inversion blocking observed at an arbiter."""
        self.blocking_cycles += cycles

    def mark_complete(self, cycle: int) -> None:
        if self.complete_cycle >= 0:
            raise ProtocolError(f"request {self.rid} completed twice")
        self.complete_cycle = cycle

    # -- outcome --------------------------------------------------------------
    @property
    def completed(self) -> bool:
        return self.complete_cycle >= 0

    @property
    def response_time(self) -> int:
        if not self.completed:
            raise ProtocolError(f"request {self.rid} has not completed")
        return self.complete_cycle - self.release_cycle

    @property
    def met_deadline(self) -> bool:
        return self.completed and self.complete_cycle <= self.absolute_deadline
