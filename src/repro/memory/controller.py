"""Memory controller servicing one request at a time.

The controller is the shared provider at the root of every interconnect
in the paper's platform.  It owns a bounded request queue (providing
backpressure to the interconnect root), an arbitration policy (FCFS or
FR-FCFS), and the DRAM device model that determines per-access cost.

Blocking accounting: while the controller services request ``r``, every
queued request with an earlier absolute deadline than ``r`` is being
*blocked by a lower-priority request* and is charged one blocking cycle
per cycle — the definition Fig. 6 measures.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Callable, Protocol

from repro.errors import CapacityError, ConfigurationError, SimulationError
from repro.memory.request import MemoryRequest


class ArbitrationPolicy(enum.Enum):
    """Controller-level request arbitration."""

    FCFS = "fcfs"
    FR_FCFS = "fr-fcfs"  # row hits first, then oldest


class _Device(Protocol):
    def access(self, request: MemoryRequest) -> int: ...  # pragma: no cover
    def access_cost(self, request: MemoryRequest) -> int: ...  # pragma: no cover


ResponseCallback = Callable[[MemoryRequest, int], None]


class MemoryController:
    """Cycle-level controller front-end.

    Drive it with :meth:`enqueue` (from the interconnect root) and
    :meth:`tick` (once per cycle).  Completed requests are handed to the
    ``on_response`` callback, which the SoC simulator wires to the
    interconnect's response path.
    """

    def __init__(
        self,
        device: _Device,
        queue_capacity: int = 16,
        policy: ArbitrationPolicy = ArbitrationPolicy.FCFS,
        on_response: ResponseCallback | None = None,
        refresh_interval: int = 0,
        refresh_duration: int = 0,
        reorder_cap: int | None = None,
    ) -> None:
        """``refresh_interval``/``refresh_duration`` model DRAM refresh
        (tREFI/tRFC): every ``refresh_interval`` cycles the controller
        stalls for ``refresh_duration`` cycles — in-flight service
        pauses, nothing is picked up.  Refresh is the classic source of
        unavoidable jitter in real-time DRAM analysis; 0 (default)
        disables it, matching the unit-slot abstraction.

        ``reorder_cap`` bounds FR-FCFS starvation blacklisting-style:
        after the oldest queued request has been bypassed by that many
        row hits, the scheduler reverts to strict FCFS until the head
        is served.  ``None`` (default) keeps the unbounded reordering
        of plain FR-FCFS; 0 degenerates to FCFS.  Every bypass of the
        head is counted in ``reorder_count`` regardless of the cap."""
        if queue_capacity <= 0:
            raise ConfigurationError(
                f"queue capacity must be positive, got {queue_capacity}"
            )
        if refresh_interval < 0 or refresh_duration < 0:
            raise ConfigurationError("refresh parameters cannot be negative")
        if refresh_interval and refresh_duration >= refresh_interval:
            raise ConfigurationError(
                "refresh duration must be shorter than the interval"
            )
        if reorder_cap is not None and reorder_cap < 0:
            raise ConfigurationError(
                f"reorder cap cannot be negative, got {reorder_cap}"
            )
        self.device = device
        self.queue_capacity = queue_capacity
        self.policy = policy
        self.on_response = on_response
        self.refresh_interval = refresh_interval
        self.refresh_duration = refresh_duration
        self._refresh_remaining = 0
        self.refresh_stall_cycles = 0
        #: stall cycles injected through the fault hook (inject_stall)
        self.fault_stall_cycles = 0
        self.reorder_cap = reorder_cap
        #: FR-FCFS picks that bypassed the oldest queued request
        self.reorder_count = 0
        self._head_bypasses = 0
        self._queue: deque[MemoryRequest] = deque()
        self._in_service: MemoryRequest | None = None
        self._service_remaining = 0
        self.serviced = 0
        self.busy_cycles = 0

    # -- ingress ------------------------------------------------------------
    def can_accept(self) -> bool:
        return len(self._queue) < self.queue_capacity

    def enqueue(self, request: MemoryRequest, cycle: int) -> None:
        """Accept a request from the interconnect root."""
        if not self.can_accept():
            raise CapacityError(
                f"controller queue full ({self.queue_capacity}); the "
                "interconnect must respect can_accept()"
            )
        request.arrive_controller_cycle = cycle
        self._queue.append(request)
        ctx = request.trace_ctx
        if ctx is not None:
            ctx.emit("mc", "enqueue", cycle, {"occupancy": len(self._queue)})

    # -- arbitration --------------------------------------------------------
    def _pick_next(self) -> MemoryRequest:
        if self.policy is ArbitrationPolicy.FCFS:
            return self._queue.popleft()
        # FR-FCFS: oldest row hit, else oldest.  The reorder cap bounds
        # starvation of the queue head: once it has been bypassed
        # ``reorder_cap`` times the scheduler falls back to strict FCFS
        # until the head is served (blacklisting-style fairness).
        hit_checker = getattr(self.device, "is_row_hit", None)
        if hit_checker is not None and (
            self.reorder_cap is None or self._head_bypasses < self.reorder_cap
        ):
            for index, request in enumerate(self._queue):
                if hit_checker(request):
                    del self._queue[index]
                    if index > 0:
                        self.reorder_count += 1
                        self._head_bypasses += 1
                    else:
                        self._head_bypasses = 0
                    return request
        self._head_bypasses = 0
        return self._queue.popleft()

    # -- fault hook ---------------------------------------------------------
    def inject_stall(self, cycles: int) -> None:
        """Freeze the controller for ``cycles`` (refresh-storm model).

        Extends the same stall window the refresh logic uses, so the
        behaviour — in-flight service pauses, nothing new is picked up,
        quiescence is vetoed for the duration — is identical to a
        (fault-length) refresh.  Stacks with a pending refresh stall.
        """
        if cycles < 1:
            raise ConfigurationError(f"stall must be >= 1 cycles, got {cycles}")
        self._refresh_remaining += cycles
        self.fault_stall_cycles += cycles

    # -- per-cycle ------------------------------------------------------------
    def tick(self, cycle: int) -> None:
        # DRAM refresh: a periodic all-banks stall (tREFI / tRFC).  The
        # stall countdown is shared with the fault hook above, so it is
        # honoured even when refresh itself is disabled; max() keeps a
        # refresh trigger from truncating an injected stall.
        if self.refresh_interval and cycle > 0 and cycle % self.refresh_interval == 0:
            self._refresh_remaining = max(
                self._refresh_remaining, self.refresh_duration
            )
        if self._refresh_remaining > 0:
            self._refresh_remaining -= 1
            self.refresh_stall_cycles += 1
            return
        if self._in_service is None and self._queue:
            request = self._pick_next()
            request.service_start_cycle = cycle
            self._in_service = request
            self._service_remaining = self.device.access(request)
            ctx = request.trace_ctx
            if ctx is not None:
                ctx.emit(
                    "mc",
                    "service_start",
                    cycle,
                    {"cost": self._service_remaining},
                )
        if self._in_service is None:
            return
        self.busy_cycles += 1
        # Priority-inversion accounting at the provider.
        in_service_key = self._in_service.priority_key
        for queued in self._queue:
            if queued.priority_key < in_service_key:
                queued.charge_blocking()
        self._service_remaining -= 1
        if self._service_remaining == 0:
            done = self._in_service
            done.service_end_cycle = cycle + 1
            self._in_service = None
            self.serviced += 1
            ctx = done.trace_ctx
            if ctx is not None:
                ctx.emit("mc", "service_end", cycle + 1)
            if self.on_response is not None:
                self.on_response(done, cycle + 1)

    # -- quiescence --------------------------------------------------------
    def is_quiescent(self) -> bool:
        """True when per-cycle ticking is reconcilable without input.

        An empty controller is a pure no-op.  A controller *serving*
        with an empty queue is also quiescent: each tick only counts a
        busy cycle and decrements the service countdown (no queued
        request to charge blocking against), which
        :meth:`on_cycles_skipped` replays arithmetically —
        :meth:`next_activity_cycle` pins the completion cycle so the
        response fires on time.  A non-empty queue or an active refresh
        stall needs real per-cycle work.
        """
        if self._queue or self._refresh_remaining > 0:
            return False
        return True

    def next_activity_cycle(self, cycle: int) -> int | None:
        """Earliest upcoming cycle whose tick is not a no-op.

        ``cycle`` is the next cycle the engine would execute; service
        countdown state reflects every tick before it.
        """
        candidate: int | None = None
        if self._in_service is not None:
            # Ticks at cycle, cycle+1, ... decrement the countdown;
            # completion (and on_response) happens on the tick that
            # takes it to zero.
            candidate = cycle + self._service_remaining - 1
        if self.refresh_interval:
            trigger = -(-cycle // self.refresh_interval) * self.refresh_interval
            if trigger == 0:
                trigger = self.refresh_interval
            if candidate is None or trigger < candidate:
                candidate = trigger
        return candidate

    def on_cycles_skipped(self, start: int, cycles: int) -> None:
        """Replay ``cycles`` idle ticks of the service countdown.

        A valid leap never swallows the completion tick: the engine must
        execute the cycle that takes the countdown to zero (it fires
        ``on_response``), so ``cycles < _service_remaining`` is a hard
        simulation invariant.  An over-skip would drive the countdown
        negative and the in-service request would never complete —
        detected here instead of surfacing as a request-conservation
        failure at trial end.  ``busy_cycles`` is clamped to the largest
        legal replay before raising, so accounting stays consistent for
        post-mortem inspection.
        """
        if self._in_service is not None:
            if cycles >= self._service_remaining:
                legal = max(0, self._service_remaining - 1)
                self.busy_cycles += legal
                self._service_remaining -= legal
                raise SimulationError(
                    f"engine over-skip: leapt {cycles} cycles at {start} but "
                    f"request {self._in_service.rid} completes in "
                    f"{legal + 1} (the completion tick must execute)"
                )
            self.busy_cycles += cycles
            self._service_remaining -= cycles

    # -- introspection -----------------------------------------------------
    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    @property
    def busy(self) -> bool:
        return self._in_service is not None

    @property
    def in_flight(self) -> int:
        """Requests inside the controller (queued + in service)."""
        return len(self._queue) + (1 if self._in_service is not None else 0)
