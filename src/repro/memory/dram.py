"""A banked DRAM device timing model.

The paper's platform has a 4 GB DRAM module behind a memory controller.
For the interconnect evaluation what matters is the *service-time
process* the shared provider exposes; this model reproduces its two
dominant features: bank-level parallelism in address mapping and the
row-buffer hit/miss asymmetry.

Timing is expressed in interconnect cycles.  Defaults approximate a
DDR3-1600 device seen from a 100 MHz fabric: a row-buffer hit costs a
CAS access, a miss adds precharge + activate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.memory.request import MemoryRequest


@dataclass(frozen=True)
class DramTiming:
    """Cycle costs of the three access outcomes."""

    row_hit_cycles: int = 12
    row_miss_cycles: int = 30
    row_conflict_cycles: int = 38  # miss on a bank with an open, different row
    write_extra_cycles: int = 2  # write recovery penalty

    def __post_init__(self) -> None:
        if min(self.row_hit_cycles, self.row_miss_cycles, self.row_conflict_cycles) <= 0:
            raise ConfigurationError("DRAM access costs must be positive")
        if not (
            self.row_hit_cycles <= self.row_miss_cycles <= self.row_conflict_cycles
        ):
            raise ConfigurationError(
                "expected hit <= miss <= conflict cost ordering"
            )
        if self.write_extra_cycles < 0:
            raise ConfigurationError("write penalty cannot be negative")


@dataclass
class DramDevice:
    """Row-buffer state per bank, plus the address mapping.

    Address mapping: row-interleaved — ``bank = (addr / row_size) %
    n_banks``, ``row = addr / (row_size * n_banks)``.  Sequential
    addresses stay in one row, large strides rotate banks.
    """

    n_banks: int = 8
    row_size_bytes: int = 2048
    timing: DramTiming = field(default_factory=DramTiming)

    def __post_init__(self) -> None:
        if self.n_banks <= 0:
            raise ConfigurationError(f"need at least one bank, got {self.n_banks}")
        if self.row_size_bytes <= 0:
            raise ConfigurationError("row size must be positive")
        self._open_rows: list[int | None] = [None] * self.n_banks
        self.hits = 0
        self.misses = 0
        self.conflicts = 0

    # -- address decoding ------------------------------------------------------
    def bank_of(self, address: int) -> int:
        return (address // self.row_size_bytes) % self.n_banks

    def row_of(self, address: int) -> int:
        return address // (self.row_size_bytes * self.n_banks)

    def open_row(self, bank: int) -> int | None:
        """Currently open row in ``bank`` (None = precharged)."""
        return self._open_rows[bank]

    # -- access --------------------------------------------------------------
    def access_cost(self, request: MemoryRequest) -> int:
        """Cost the access *would* incur, without changing state."""
        bank = self.bank_of(request.address)
        row = self.row_of(request.address)
        open_row = self._open_rows[bank]
        if open_row == row:
            cost = self.timing.row_hit_cycles
        elif open_row is None:
            cost = self.timing.row_miss_cycles
        else:
            cost = self.timing.row_conflict_cycles
        if request.kind.value == "write":
            cost += self.timing.write_extra_cycles
        return cost

    def access(self, request: MemoryRequest) -> int:
        """Perform the access: update row-buffer state, return the cost."""
        bank = self.bank_of(request.address)
        row = self.row_of(request.address)
        open_row = self._open_rows[bank]
        if open_row == row:
            self.hits += 1
        elif open_row is None:
            self.misses += 1
        else:
            self.conflicts += 1
        cost = self.access_cost(request)
        self._open_rows[bank] = row
        return cost

    def is_row_hit(self, request: MemoryRequest) -> bool:
        bank = self.bank_of(request.address)
        return self._open_rows[bank] == self.row_of(request.address)

    def precharge_all(self) -> None:
        """Close every row buffer (refresh boundary)."""
        self._open_rows = [None] * self.n_banks

    @property
    def total_accesses(self) -> int:
        return self.hits + self.misses + self.conflicts

    @property
    def row_hit_ratio(self) -> float:
        total = self.total_accesses
        if total == 0:
            return 0.0
        return self.hits / total


@dataclass(frozen=True)
class FixedLatencyDevice:
    """A degenerate device with one flat access cost.

    The analytical experiments (and several unit tests) use this to
    decouple interconnect behaviour from DRAM state; one interconnect
    time unit in the schedulability model corresponds to one such
    fixed-cost service slot.
    """

    cycles_per_access: int = 20

    def __post_init__(self) -> None:
        if self.cycles_per_access <= 0:
            raise ConfigurationError("access cost must be positive")

    def access(self, request: MemoryRequest) -> int:
        return self.cycles_per_access

    def access_cost(self, request: MemoryRequest) -> int:
        return self.cycles_per_access
