"""Regenerate the golden campaign fixtures.

Rewrites both ``tests/fixtures/golden_traces.json`` (scalar per-trial
runners) and ``tests/fixtures/golden_batched_metrics.json`` (the same
configurations through the batch entry points on the batched backend).
Run after a *deliberate* behavioural change invalidates the pinned
completion-trace digests::

    PYTHONPATH=src python scripts/regen_golden_traces.py

Review the resulting fixture diff together with the change that caused
it — an unexpected digest flip means observable scheduling behaviour
changed.  The two fixtures must stay consistent (the batched digests
equal the scalar ones); tests/experiments/test_golden_batched.py
asserts that, so always regenerate them together.
"""

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from tests.experiments.test_golden_batched import (  # noqa: E402
    GOLDEN_BATCHED_PATH,
    collect_batched_metrics,
)
from tests.experiments.test_golden_traces import (  # noqa: E402
    GOLDEN_PATH,
    collect_digests,
)


def main() -> None:
    digests = collect_digests()
    payload = {
        "comment": (
            "Completion-trace sha256 digests of the pinned fig6/fig7 "
            "configurations (see tests/experiments/test_golden_traces.py). "
            "Regenerate with scripts/regen_golden_traces.py."
        ),
        "digests": digests,
    }
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {len(digests)} digests to {GOLDEN_PATH}")

    batched = collect_batched_metrics()
    batched_payload = {
        "comment": (
            "Per-trial scalars and trace digests of the pinned fig6/fig7 "
            "and fault-injection isolation configurations run through the "
            "batch entry points on the batched backend (see "
            "tests/experiments/test_golden_batched.py). "
            "Regenerate with scripts/regen_golden_traces.py."
        ),
        **batched,
    }
    GOLDEN_BATCHED_PATH.write_text(
        json.dumps(batched_payload, indent=2, sort_keys=True) + "\n"
    )
    trials = (
        len(batched["fig6"])
        + len(batched["fig7"])
        + len(batched["isolation"])
    )
    print(f"wrote {trials} batched trial records to {GOLDEN_BATCHED_PATH}")


if __name__ == "__main__":
    main()
