"""Regenerate ``tests/fixtures/golden_interfaces.json``.

The fixture pins the selected ``(Π, Θ)`` per quadtree level for three
canonical topologies (16/32/64 clients).  It is produced by the
*scalar* oracle — the reference semantics — and the regression test
then requires both backends to reproduce it exactly.

Run after an intentional change to selection semantics (and say so in
the commit message; an unintentional diff here is a regression, not a
fixture update)::

    PYTHONPATH=src:tests python scripts/regen_golden_interfaces.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(REPO / "tests"))

from repro.analysis import compose
from repro.analysis.cache import DISABLED

from analysis.golden_utils import (
    FIXTURE_PATH,
    GOLDEN_SIZES,
    composition_snapshot,
    golden_system,
)


def main() -> int:
    snapshots = {}
    for n_clients in GOLDEN_SIZES:
        topology, tasksets = golden_system(n_clients)
        result = compose(topology, tasksets, backend="scalar", cache=DISABLED)
        snapshots[str(n_clients)] = composition_snapshot(result)
        print(
            f"n={n_clients}: schedulable={result.schedulable} "
            f"root_bandwidth={result.root_bandwidth}"
        )
    FIXTURE_PATH.parent.mkdir(parents=True, exist_ok=True)
    FIXTURE_PATH.write_text(json.dumps(snapshots, indent=2) + "\n")
    print(f"wrote {FIXTURE_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
