"""Regenerate (or check) every committed golden fixture.

One entry point for all golden-baseline families::

    PYTHONPATH=src python scripts/regen_golden.py traces
    PYTHONPATH=src python scripts/regen_golden.py interfaces
    PYTHONPATH=src python scripts/regen_golden.py campaign
    PYTHONPATH=src python scripts/regen_golden.py all

Families:

* ``traces`` — ``tests/fixtures/golden_traces.json`` (scalar per-trial
  completion-trace digests) and ``tests/fixtures/golden_batched_metrics.json``
  (the same configurations through the batch entry points on the
  batched backend).  The two must stay consistent, so they always
  regenerate together.
* ``interfaces`` — ``tests/fixtures/golden_interfaces.json``: the
  selected ``(Π, Θ)`` per quadtree level for the canonical topologies,
  produced by the *scalar* oracle.
* ``campaign`` — ``tests/fixtures/golden_campaign.json``: the golden
  baseline of the committed CI campaign spec (``campaigns/ci.json``),
  diffed in CI by ``repro campaign diff``.

``--check`` regenerates every requested fixture in memory and compares
it byte-for-byte against the committed file without writing anything;
any drift (or a missing fixture) exits 1.  CI runs ``all --check`` so a
stale golden is a failing job, not a ritual someone forgot.

Regenerate only after a *deliberate* behavioural change, and review the
fixture diff together with the change that caused it — an unexpected
flip means observable behaviour changed.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(REPO))
sys.path.insert(0, str(REPO / "tests"))

FIXTURES = REPO / "tests" / "fixtures"
CI_SPEC = REPO / "campaigns" / "ci.json"


def build_traces() -> dict[Path, str]:
    """Both trace fixtures: scalar digests + batched metrics."""
    from tests.experiments.test_golden_batched import (
        GOLDEN_BATCHED_PATH,
        collect_batched_metrics,
    )
    from tests.experiments.test_golden_traces import (
        GOLDEN_PATH,
        collect_digests,
    )

    digests = collect_digests()
    payload = {
        "comment": (
            "Completion-trace sha256 digests of the pinned fig6/fig7 "
            "configurations (see tests/experiments/test_golden_traces.py). "
            "Regenerate with scripts/regen_golden.py traces."
        ),
        "digests": digests,
    }
    batched = collect_batched_metrics()
    batched_payload = {
        "comment": (
            "Per-trial scalars and trace digests of the pinned fig6/fig7 "
            "and fault-injection isolation configurations run through the "
            "batch entry points on the batched backend (see "
            "tests/experiments/test_golden_batched.py). "
            "Regenerate with scripts/regen_golden.py traces."
        ),
        **batched,
    }
    return {
        GOLDEN_PATH: json.dumps(payload, indent=2, sort_keys=True) + "\n",
        GOLDEN_BATCHED_PATH: json.dumps(
            batched_payload, indent=2, sort_keys=True
        )
        + "\n",
    }


def build_interfaces() -> dict[Path, str]:
    """The scalar-oracle composition snapshots."""
    from repro.analysis import compose
    from repro.analysis.cache import DISABLED

    from analysis.golden_utils import (
        FIXTURE_PATH,
        GOLDEN_SIZES,
        composition_snapshot,
        golden_system,
    )

    snapshots = {}
    for n_clients in GOLDEN_SIZES:
        topology, tasksets = golden_system(n_clients)
        result = compose(topology, tasksets, backend="scalar", cache=DISABLED)
        snapshots[str(n_clients)] = composition_snapshot(result)
    return {FIXTURE_PATH: json.dumps(snapshots, indent=2) + "\n"}


def build_campaign() -> dict[Path, str]:
    """The golden baseline of the committed CI campaign spec."""
    from repro.campaigns import (
        golden_payload,
        load_artifacts,
        load_campaign_spec,
        run_campaign,
    )
    from repro.campaigns.spec import canonical_json

    spec = load_campaign_spec(CI_SPEC)
    with tempfile.TemporaryDirectory(prefix="golden-campaign-") as tmp:
        run_campaign(spec, tmp, workers=1, resume=False)
        payload = golden_payload(
            load_artifacts(tmp),
            comment=(
                f"Golden baseline of the committed campaign spec "
                f"{CI_SPEC.relative_to(REPO)} (spec digest "
                f"{spec.digest()}). Regenerate with "
                "scripts/regen_golden.py campaign; CI diffs fresh runs "
                "against this file with `repro campaign diff`."
            ),
        )
    return {
        FIXTURES
        / "golden_campaign.json": canonical_json(payload) + "\n"
    }


BUILDERS = {
    "traces": build_traces,
    "interfaces": build_interfaces,
    "campaign": build_campaign,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="regenerate or verify the committed golden fixtures"
    )
    parser.add_argument(
        "family",
        choices=(*BUILDERS, "all"),
        help="which fixture family to regenerate",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="write nothing: rebuild and diff against the committed "
        "fixtures, exit 1 on any drift",
    )
    args = parser.parse_args(argv)
    families = list(BUILDERS) if args.family == "all" else [args.family]

    drifted: list[Path] = []
    for family in families:
        for path, text in BUILDERS[family]().items():
            rel = path.relative_to(REPO)
            if args.check:
                committed = (
                    path.read_text(encoding="utf-8")
                    if path.exists()
                    else None
                )
                if committed != text:
                    status = "MISSING" if committed is None else "DRIFTED"
                    print(f"{status}: {rel}")
                    drifted.append(path)
                else:
                    print(f"ok: {rel}")
            else:
                path.parent.mkdir(parents=True, exist_ok=True)
                path.write_text(text, encoding="utf-8")
                print(f"wrote {rel}")
    if drifted:
        print(
            f"\n{len(drifted)} fixture(s) out of date; regenerate with "
            f"`PYTHONPATH=src python scripts/regen_golden.py "
            f"{args.family}` and review the diff",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
