"""Admission-service load benchmark: sustained queries/sec and latency.

Boots the :mod:`repro.service` daemon in-process (ephemeral port) over a
16-client seeded :class:`~repro.analysis.model.SystemModel`, then
drives it with several threads of keep-alive clients cycling through a
fixed pool of admission queries — admittable light tasks and heavy
always-rejected ones — exactly the warm-cache steady state a
long-running admission daemon settles into.  Writes
``BENCH_service.json`` with:

* sustained throughput (queries/sec over the whole timed window);
* client-observed latency percentiles (p50/p95/p99/max, ms), measured
  per request around the HTTP round trip;
* the daemon's own ``/metrics`` view — request counters, server-side
  latency percentiles, analysis-cache hit rate;
* per-query verdict parity against a direct in-process
  :class:`~repro.analysis.session.AdmissionSession` over the same model
  (the daemon must answer exactly what the library answers).

Acceptance gates (full mode): >= 1000 admission queries/sec sustained,
warm-cache p99 < 10 ms, zero daemon errors, verdicts identical.

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py            # full run
    PYTHONPATH=src python benchmarks/bench_service.py --smoke    # CI smoke
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.model import SystemModel
from repro.service import ServiceClient, ServiceError, start_background
from repro.sim.stats import SummaryStatistics
from repro.tasks.task import PeriodicTask

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_service.json"

N_CLIENTS = 16
#: light tasks any baseline client can absorb
LIGHT_TASKS = [
    PeriodicTask(period=1000, wcet=1, name="light/a"),
    PeriodicTask(period=2000, wcet=2, name="light/b"),
    PeriodicTask(period=4000, wcet=1, name="light/c"),
]
#: near-full-bandwidth tasks no client can absorb
HEAVY_TASKS = [
    PeriodicTask(period=64, wcet=60, name="heavy/a"),
    PeriodicTask(period=128, wcet=120, name="heavy/b"),
]


def build_query_pool() -> list[tuple[int, PeriodicTask]]:
    """The fixed (client, task) pool every thread cycles through.

    Small by design: a steady-state daemon sees recurring submissions,
    so repeats hit the analysis cache — that warm path is what the
    throughput gate is about.
    """
    pool: list[tuple[int, PeriodicTask]] = []
    for client in range(N_CLIENTS):
        pool.append((client, LIGHT_TASKS[client % len(LIGHT_TASKS)]))
        if client % 4 == 0:
            pool.append((client, HEAVY_TASKS[client % len(HEAVY_TASKS)]))
    return pool


def verify_verdicts(
    model: SystemModel,
    host: str,
    port: int,
    pool: list[tuple[int, PeriodicTask]],
) -> int:
    """Every pooled query answered by the daemon == direct session probe."""
    session = model.session()
    mismatches = 0
    with ServiceClient(host, port) as client:
        for client_id, task in pool:
            remote = client.admission(client_id, task)
            local = session.probe(client_id, task)
            same = remote["admitted"] == local.admitted
            if same and local.admitted:
                iface = remote["interface"]
                same = (
                    iface["period"] == local.interface.period
                    and iface["budget"] == local.interface.budget
                )
            if not same:
                print(
                    f"VERDICT MISMATCH client={client_id} task={task.name}: "
                    f"daemon={remote}, direct={local.admitted}"
                )
                mismatches += 1
    return mismatches


def run_load(
    host: str,
    port: int,
    pool: list[tuple[int, PeriodicTask]],
    n_threads: int,
    requests_per_thread: int,
) -> tuple[float, list[float], int]:
    """Drive the daemon; returns (wall seconds, latencies ms, errors)."""
    latencies: list[list[float]] = [[] for _ in range(n_threads)]
    errors = [0] * n_threads
    barrier = threading.Barrier(n_threads + 1)

    def worker(tid: int) -> None:
        with ServiceClient(host, port) as client:
            client.healthz()  # connection established before the clock
            barrier.wait()
            mine = latencies[tid]
            for i in range(requests_per_thread):
                client_id, task = pool[(tid + i) % len(pool)]
                start = time.perf_counter()
                try:
                    client.admission(client_id, task)
                except ServiceError:
                    errors[tid] += 1
                mine.append((time.perf_counter() - start) * 1000.0)

    threads = [
        threading.Thread(target=worker, args=(tid,))
        for tid in range(n_threads)
    ]
    for t in threads:
        t.start()
    barrier.wait()
    started = time.perf_counter()
    for t in threads:
        t.join()
    wall = time.perf_counter() - started
    return wall, [x for per in latencies for x in per], sum(errors)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="a few hundred requests; asserts zero errors and a warm "
        "cache, skips the throughput/latency gates",
    )
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT, help="output JSON path"
    )
    parser.add_argument(
        "--threads", type=int, default=4, help="load-generator threads"
    )
    parser.add_argument(
        "--requests",
        type=int,
        default=1500,
        help="timed requests per thread (full mode)",
    )
    args = parser.parse_args(argv)
    per_thread = 75 if args.smoke else max(1, args.requests)

    model = SystemModel.from_seed(N_CLIENTS, utilization=0.3, seed=7)
    pool = build_query_pool()
    handle = start_background(model, max_workers=args.threads)
    try:
        # Verdict parity doubles as the cache warm-up pass: after it,
        # every pooled query's path selections are memoized.
        mismatches = verify_verdicts(model, handle.host, handle.port, pool)
        wall, latencies, errors = run_load(
            handle.host, handle.port, pool, args.threads, per_thread
        )
        with ServiceClient(handle.host, handle.port) as client:
            server_metrics = client.metrics()
    finally:
        handle.stop()

    total = args.threads * per_thread
    qps = total / wall
    stats = SummaryStatistics.from_sample(latencies)
    cache = server_metrics["cache"]
    print(
        f"{total} admission queries over {wall:.2f}s from "
        f"{args.threads} threads: {qps:.0f} q/s"
    )
    print(
        f"client-observed latency: p50 {stats.p50:.2f}ms, "
        f"p95 {stats.p95:.2f}ms, p99 {stats.p99:.2f}ms, "
        f"max {stats.maximum:.2f}ms"
    )
    server_latency = server_metrics["latency_ms"]
    print(
        f"daemon-side analysis latency: p50 {server_latency['p50']:.3f}ms, "
        f"p99 {server_latency['p99']:.3f}ms, max {server_latency['max']:.3f}ms"
    )
    print(
        f"daemon: {errors} client errors, "
        f"{server_metrics['metrics']['service/errors']:.0f} server errors, "
        f"cache hit rate {cache['hit_rate']:.1%}"
    )

    payload = {
        "benchmark": "bench_service",
        "mode": "smoke" if args.smoke else "full",
        "description": (
            "Warm-cache admission-control daemon under multi-threaded "
            "keep-alive load; verdicts verified against a direct "
            "in-process AdmissionSession over the same SystemModel."
        ),
        "model": model.describe(),
        "threads": args.threads,
        "requests": total,
        "wall_seconds": round(wall, 3),
        "queries_per_second": round(qps, 1),
        "latency_ms": {
            "p50": round(stats.p50, 3),
            "p95": round(stats.p95, 3),
            "p99": round(stats.p99, 3),
            "max": round(stats.maximum, 3),
        },
        # The daemon's own view of the analysis time (excludes HTTP):
        # the /metrics tail-latency block, as monitors would scrape it.
        "server_latency_ms": server_latency,
        "verdict_mismatches": mismatches,
        "client_errors": errors,
        "server_metrics": server_metrics,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")

    failures = []
    if mismatches:
        failures.append(f"{mismatches} verdict mismatches vs direct session")
    if errors or server_metrics["metrics"]["service/errors"]:
        failures.append("daemon returned errors under load")
    if cache["hit_rate"] <= 0.0:
        failures.append("analysis cache never hit (warm path not exercised)")
    if not args.smoke:
        if qps < 1000.0:
            failures.append(f"throughput {qps:.0f} q/s < 1000 q/s gate")
        if stats.p99 >= 10.0:
            failures.append(f"warm-cache p99 {stats.p99:.2f}ms >= 10ms gate")
    if failures:
        print("FAIL: " + "; ".join(failures))
        return 1
    print("OK: all gates passed" if not args.smoke else "OK: smoke passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
