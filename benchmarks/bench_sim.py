"""Simulation-kernel benchmark: quiescence fast path vs. reference loop.

Runs the Fig. 7 case-study workload (processors + DNN accelerator)
against every interconnect at several (system size, target utilization)
configurations, each trial twice — fast path on and off — on the *same*
workload draw, and writes ``BENCH_sim.json`` with:

* per-(configuration, interconnect): simulated cycles per wall-clock
  second for both paths, the resulting speedup, and the fast path's
  skip ratio (fraction of cycles leapt over);
* per-configuration aggregates across the six designs (total cycles /
  total wall time), which is the headline number: at low utilization
  the fast path must deliver >= 2x the reference throughput;
* a per-component cycle-accounting profile (executed/skipped/vetoes)
  from :class:`repro.sim.stats.CycleAccounting` for one representative
  low-utilization trial.

Every fast/slow pair is also checked for equal trace digests, so the
benchmark doubles as an end-to-end differential test at benchmark
scale.

Usage::

    PYTHONPATH=src python benchmarks/bench_sim.py            # full run
    PYTHONPATH=src python benchmarks/bench_sim.py --smoke    # CI smoke
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.clients.accelerator import AcceleratorClient
from repro.clients.processor import ProcessorClient
from repro.experiments.factory import INTERCONNECT_NAMES, build_interconnect
from repro.experiments.fig7 import Fig7Config, _build_trial_tasksets
from repro.runtime import TrialSpec, derive_seeds
from repro.sim.stats import CycleAccounting
from repro.soc import SoCSimulation
from repro.tasks.taskset import TaskSet

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_sim.json"

#: (label, n_processors, utilization) — the low-utilization points are
#: the acceptance-gated ones; the high points give context (the fast
#: path degrades gracefully toward ~1x as idle cycles vanish).
FULL_CONFIGS = [
    ("n16/u0.10", 16, 0.10),
    ("n16/u0.20", 16, 0.20),
    ("n16/u0.50", 16, 0.50),
    ("n16/u0.80", 16, 0.80),
    ("n64/u0.10", 64, 0.10),
    ("n64/u0.30", 64, 0.30),
]
SMOKE_CONFIGS = [
    ("n16/u0.10", 16, 0.10),
    ("n16/u0.50", 16, 0.50),
]


def _build_simulation(
    config: Fig7Config,
    utilization: float,
    spec: TrialSpec,
    name: str,
    fast: bool,
    accounting: CycleAccounting | None = None,
) -> SoCSimulation:
    """One Fig. 7 trial setup, mirroring ``run_fig7_trial``."""
    accelerator_id = config.n_processors
    rng = random.Random(spec.seed)
    application, interference, accelerator_tasks = _build_trial_tasksets(
        config, utilization, rng
    )
    combined = {
        client: application[client].merged_with(
            interference.get(client, TaskSet())
        )
        for client in application
    }
    combined[accelerator_id] = accelerator_tasks.merged_with(
        interference.get(accelerator_id, TaskSet())
    )
    interconnect = build_interconnect(
        name, config.n_clients, combined, config.factory
    )
    clients: list = [
        ProcessorClient(
            client,
            application[client],
            interference.get(client, TaskSet()),
            rng=random.Random(spec.client_seed(client)),
        )
        for client in application
    ]
    clients.append(
        AcceleratorClient(
            accelerator_id,
            combined[accelerator_id],
            bandwidth_cap=1.0 / config.n_clients,
            rng=random.Random(spec.client_seed(accelerator_id)),
        )
    )
    return SoCSimulation(
        clients, interconnect, fast_path=fast, accounting=accounting
    )


def _timed(build, config: Fig7Config):
    simulation = build()
    start = time.perf_counter()
    result = simulation.run(config.horizon, drain=config.drain)
    return result, time.perf_counter() - start, simulation


def _time_pair(build_fast, build_slow, config: Fig7Config, repeats: int):
    """Best-of-``repeats`` wall time for both paths, interleaved.

    The minimum is the least noise-contaminated sample, and alternating
    fast/slow runs keeps slow drift in machine load (CI neighbours,
    frequency scaling) from biasing one path.  Each repeat rebuilds its
    simulation, so every run starts cold and identical."""
    fast_time = slow_time = None
    for _ in range(repeats):
        fast_result, elapsed, fast_sim = _timed(build_fast, config)
        if fast_time is None or elapsed < fast_time:
            fast_time = elapsed
        slow_result, elapsed, _ = _timed(build_slow, config)
        if slow_time is None or elapsed < slow_time:
            slow_time = elapsed
    return fast_result, fast_time, fast_sim, slow_result, slow_time


def bench_configuration(
    label: str,
    n_processors: int,
    utilization: float,
    horizon: int,
    drain: int,
    repeats: int,
) -> dict:
    config = Fig7Config(
        n_processors=n_processors,
        trials=1,
        horizon=horizon,
        drain=drain,
        utilizations=(utilization,),
    )
    seed = derive_seeds(f"bench_sim/{label}", 1)[0]
    spec = TrialSpec.make("bench_sim", 0, seed, config=config)
    cycles = horizon + drain
    per_design: dict[str, dict] = {}
    fast_time_total = 0.0
    slow_time_total = 0.0
    for name in INTERCONNECT_NAMES:
        fast_result, fast_time, fast_sim, slow_result, slow_time = _time_pair(
            lambda: _build_simulation(config, utilization, spec, name, True),
            lambda: _build_simulation(config, utilization, spec, name, False),
            config,
            repeats,
        )
        if fast_result.trace_digest != slow_result.trace_digest:
            raise AssertionError(
                f"{label}/{name}: fast and slow traces diverge — the "
                "fast path is broken, benchmark numbers would be lies"
            )
        fast_time_total += fast_time
        slow_time_total += slow_time
        skipped = fast_result.cycles_skipped
        per_design[name] = {
            "fast_cycles_per_sec": round(cycles / fast_time, 1),
            "slow_cycles_per_sec": round(cycles / slow_time, 1),
            "speedup": round(slow_time / fast_time, 3),
            "skip_ratio": round(skipped / cycles, 4),
            "leaps": fast_sim.leaps,
        }
    total_cycles = cycles * len(INTERCONNECT_NAMES)
    return {
        "label": label,
        "n_processors": n_processors,
        "utilization": utilization,
        "horizon": horizon,
        "drain": drain,
        "interconnects": per_design,
        "aggregate": {
            "fast_cycles_per_sec": round(total_cycles / fast_time_total, 1),
            "slow_cycles_per_sec": round(total_cycles / slow_time_total, 1),
            "speedup": round(slow_time_total / fast_time_total, 3),
        },
    }


def profile_components(horizon: int, drain: int) -> dict:
    """Cycle-accounting profile of one low-utilization BlueScale trial."""
    config = Fig7Config(
        n_processors=16,
        trials=1,
        horizon=horizon,
        drain=drain,
        utilizations=(0.10,),
    )
    seed = derive_seeds("bench_sim/profile", 1)[0]
    spec = TrialSpec.make("bench_sim", 0, seed, config=config)
    accounting = CycleAccounting()
    simulation = _build_simulation(
        config, 0.10, spec, "BlueScale", True, accounting=accounting
    )
    simulation.run(config.horizon, drain=config.drain)
    return accounting.as_dict()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny horizons + two configurations (CI wiring check; "
        "speedups are noise at this scale and are not asserted)",
    )
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT, help="output JSON path"
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timing repetitions per run (best-of-N wall time)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        configs, horizon, drain, repeats = SMOKE_CONFIGS, 2_000, 1_000, 1
    else:
        configs, horizon, drain, repeats = (
            FULL_CONFIGS,
            20_000,
            6_000,
            max(1, args.repeats),
        )

    # Warm the interpreter (imports, code objects, allocator arenas)
    # outside the timed region so the first configuration is not
    # penalized relative to the rest.
    bench_configuration("warmup", 4, 0.3, 1_000, 500, 1)

    results = []
    for label, n_processors, utilization in configs:
        entry = bench_configuration(
            label, n_processors, utilization, horizon, drain, repeats
        )
        aggregate = entry["aggregate"]
        print(
            f"{label}: fast {aggregate['fast_cycles_per_sec']:.0f} c/s, "
            f"slow {aggregate['slow_cycles_per_sec']:.0f} c/s, "
            f"speedup {aggregate['speedup']:.2f}x"
        )
        results.append(entry)

    payload = {
        "benchmark": "bench_sim",
        "mode": "smoke" if args.smoke else "full",
        "description": (
            "Quiescence fast path vs cycle-by-cycle reference on the "
            "Fig. 7 workload; every fast/slow pair verified trace-equal."
        ),
        "configurations": results,
        "component_profile_n16_u0.10": profile_components(horizon, drain),
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")

    if not args.smoke:
        shortfalls = [
            f"{entry['label']}: {entry['aggregate']['speedup']:.2f}x"
            for entry in results
            if entry["utilization"] <= 0.2
            and entry["aggregate"]["speedup"] < 2.0
        ]
        if shortfalls:
            print(
                "FAIL: low-utilization aggregate speedup below 2x: "
                + ", ".join(shortfalls)
            )
            return 1
        print("OK: all low-utilization configurations >= 2x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
