"""Simulation-kernel benchmark: batched SoA backend and quiescence fast path.

Three comparisons, written to ``BENCH_sim.json``:

1. **Batched backend vs. scalar fast path** — the headline number, on
   the Fig. 7 case-study workload (processors + DNN accelerator).
   N independent trials per interconnect, run once through
   :func:`repro.sim.run_many` on the batched structure-of-arrays
   backend and once trial-by-trial on the scalar engine (fast path
   on).  Every batched/scalar pair is checked for equal trace
   digests, and the aggregate across all six designs must reach the
   5x gate recorded in the ``aggregate`` block
   (``{speedup, threshold, passed, pairs_verified}``).

2. **Batched backend on the fault-injection isolation campaign** —
   every (trial, design, baseline/faulted) simulation of the
   Experiment-FI workload (:mod:`repro.experiments.isolation`),
   rogue-burst fault plans compiled into the SoA request schedule,
   against the same simulations run one by one on the scalar fast
   path.  Every pair is checked for equal trace digests, job outcomes
   and fault counters; the aggregate must reach the 3x gate
   (``batched_isolation`` block).

3. **Scalar fast path vs. cycle-by-cycle reference** — each trial
   twice, fast path on and off, on the *same* workload draw; at
   utilization 0.10 the fast path must deliver >= 2x the reference
   throughput (``threshold``/``passed`` on the per-configuration
   aggregates).

Both gates are enforced in code (non-zero exit) on full runs; the
``--smoke`` mode keeps the digest checks but skips the thresholds,
which are noise at smoke scale.  A per-component cycle-accounting
profile from :class:`repro.sim.stats.CycleAccounting` rounds out the
payload.

Usage::

    PYTHONPATH=src python benchmarks/bench_sim.py            # full run
    PYTHONPATH=src python benchmarks/bench_sim.py --smoke    # CI smoke
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.clients.accelerator import AcceleratorClient
from repro.clients.processor import ProcessorClient
from repro.experiments.factory import INTERCONNECT_NAMES, build_interconnect
from repro.experiments.fig7 import Fig7Config, _build_trial_tasksets
from repro.experiments.isolation import (
    ISOLATION_INTERCONNECTS,
    IsolationConfig,
    _isolation_sims,
    build_isolation_specs,
)
from repro.runtime import TrialSpec, derive_seeds
from repro.sim import batched_supported, run_many
from repro.sim.stats import CycleAccounting
from repro.soc import SoCSimulation
from repro.tasks.taskset import TaskSet

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_sim.json"

#: (label, n_processors, utilization) — the u=0.10 points are the
#: acceptance-gated ones (u=0.20 sits so close to 2x that the gate
#: would flake on machine noise; it is reported for context, as are
#: the high points, where the fast path degrades gracefully toward
#: ~1x as idle cycles vanish).
FULL_CONFIGS = [
    ("n16/u0.10", 16, 0.10),
    ("n16/u0.20", 16, 0.20),
    ("n16/u0.50", 16, 0.50),
    ("n16/u0.80", 16, 0.80),
    ("n64/u0.10", 64, 0.10),
    ("n64/u0.30", 64, 0.30),
]
SMOKE_CONFIGS = [
    ("n16/u0.10", 16, 0.10),
    ("n16/u0.50", 16, 0.50),
]

#: Fast-path-vs-reference gate on low-utilization configurations.
FAST_PATH_THRESHOLD = 2.0
#: Batched-backend-vs-fast-path gate on the Fig. 7 campaign workload.
BATCHED_THRESHOLD = 5.0
#: Trials per interconnect for the batched-backend comparison.  Large
#: enough that per-trial Python overhead amortizes into full lock-step
#: groups (the regime campaigns actually run in).
BATCHED_TRIALS_FULL = 400
BATCHED_TRIALS_SMOKE = 8

#: Batched-backend gate on the isolation (fault-injection) campaign.
#: Lower than the Fig. 7 gate: the campaign runs at 40-55% utilization,
#: where the scalar fast path leaps over long idle stretches the SoA
#: kernels must execute cycle by cycle (measured ~6x; 3x is the floor
#: that still proves the rogue-burst compilation pays for itself).
BATCHED_ISOLATION_THRESHOLD = 3.0
ISOLATION_TRIALS_FULL = 100
ISOLATION_TRIALS_SMOKE = 6


def _build_simulation(
    config: Fig7Config,
    utilization: float,
    spec: TrialSpec,
    name: str,
    fast: bool,
    accounting: CycleAccounting | None = None,
) -> SoCSimulation:
    """One Fig. 7 trial setup, mirroring ``run_fig7_trial``."""
    accelerator_id = config.n_processors
    rng = random.Random(spec.seed)
    application, interference, accelerator_tasks = _build_trial_tasksets(
        config, utilization, rng
    )
    combined = {
        client: application[client].merged_with(
            interference.get(client, TaskSet())
        )
        for client in application
    }
    combined[accelerator_id] = accelerator_tasks.merged_with(
        interference.get(accelerator_id, TaskSet())
    )
    interconnect = build_interconnect(
        name, config.n_clients, combined, config.factory
    )
    clients: list = [
        ProcessorClient(
            client,
            application[client],
            interference.get(client, TaskSet()),
            rng=random.Random(spec.client_seed(client)),
        )
        for client in application
    ]
    clients.append(
        AcceleratorClient(
            accelerator_id,
            combined[accelerator_id],
            bandwidth_cap=1.0 / config.n_clients,
            rng=random.Random(spec.client_seed(accelerator_id)),
        )
    )
    return SoCSimulation(
        clients, interconnect, fast_path=fast, accounting=accounting
    )


def _timed(build, config: Fig7Config):
    simulation = build()
    start = time.perf_counter()
    result = simulation.run(config.horizon, drain=config.drain)
    return result, time.perf_counter() - start, simulation


def _time_pair(build_fast, build_slow, config: Fig7Config, repeats: int):
    """Best-of-``repeats`` wall time for both paths, interleaved.

    The minimum is the least noise-contaminated sample, and alternating
    fast/slow runs keeps slow drift in machine load (CI neighbours,
    frequency scaling) from biasing one path.  Each repeat rebuilds its
    simulation, so every run starts cold and identical."""
    fast_time = slow_time = None
    for _ in range(repeats):
        fast_result, elapsed, fast_sim = _timed(build_fast, config)
        if fast_time is None or elapsed < fast_time:
            fast_time = elapsed
        slow_result, elapsed, _ = _timed(build_slow, config)
        if slow_time is None or elapsed < slow_time:
            slow_time = elapsed
    return fast_result, fast_time, fast_sim, slow_result, slow_time


def bench_configuration(
    label: str,
    n_processors: int,
    utilization: float,
    horizon: int,
    drain: int,
    repeats: int,
) -> dict:
    config = Fig7Config(
        n_processors=n_processors,
        trials=1,
        horizon=horizon,
        drain=drain,
        utilizations=(utilization,),
    )
    seed = derive_seeds(f"bench_sim/{label}", 1)[0]
    spec = TrialSpec.make("bench_sim", 0, seed, config=config)
    cycles = horizon + drain
    per_design: dict[str, dict] = {}
    fast_time_total = 0.0
    slow_time_total = 0.0
    for name in INTERCONNECT_NAMES:
        fast_result, fast_time, fast_sim, slow_result, slow_time = _time_pair(
            lambda: _build_simulation(config, utilization, spec, name, True),
            lambda: _build_simulation(config, utilization, spec, name, False),
            config,
            repeats,
        )
        if fast_result.trace_digest != slow_result.trace_digest:
            raise AssertionError(
                f"{label}/{name}: fast and slow traces diverge — the "
                "fast path is broken, benchmark numbers would be lies"
            )
        fast_time_total += fast_time
        slow_time_total += slow_time
        skipped = fast_result.cycles_skipped
        per_design[name] = {
            "fast_cycles_per_sec": round(cycles / fast_time, 1),
            "slow_cycles_per_sec": round(cycles / slow_time, 1),
            "speedup": round(slow_time / fast_time, 3),
            "skip_ratio": round(skipped / cycles, 4),
            "leaps": fast_sim.leaps,
        }
    total_cycles = cycles * len(INTERCONNECT_NAMES)
    aggregate = {
        "fast_cycles_per_sec": round(total_cycles / fast_time_total, 1),
        "slow_cycles_per_sec": round(total_cycles / slow_time_total, 1),
        "speedup": round(slow_time_total / fast_time_total, 3),
    }
    if utilization <= 0.1:
        aggregate["threshold"] = FAST_PATH_THRESHOLD
        aggregate["passed"] = aggregate["speedup"] >= FAST_PATH_THRESHOLD
    return {
        "label": label,
        "n_processors": n_processors,
        "utilization": utilization,
        "horizon": horizon,
        "drain": drain,
        "interconnects": per_design,
        "aggregate": aggregate,
    }


def bench_batched_backend(n_trials: int, horizon: int, drain: int) -> dict:
    """Batched SoA backend vs. the scalar fast path, N trials per design.

    This is the shape campaigns actually take: many independent trials
    of one configuration, submitted together.  The scalar side runs the
    same N simulations one by one with the fast path on (the engine the
    batched backend must beat); every pair is digest-compared so a
    kernel bug cannot hide behind a good number."""
    utilization = 0.60
    config = Fig7Config(
        n_processors=16,
        trials=n_trials,
        horizon=horizon,
        drain=drain,
        utilizations=(utilization,),
    )
    specs = [
        TrialSpec.make("bench_sim", index, seed, config=config)
        for index, seed in enumerate(
            derive_seeds("bench_sim/batched", n_trials)
        )
    ]
    per_design: dict[str, dict] = {}
    scalar_total = batched_total = 0.0
    pairs_verified = 0
    for name in INTERCONNECT_NAMES:
        batch = [
            _build_simulation(config, utilization, spec, name, True)
            for spec in specs
        ]
        ineligible = [
            index
            for index, simulation in enumerate(batch)
            if not batched_supported(simulation)
        ]
        if ineligible:
            raise AssertionError(
                f"{name}: trials {ineligible} would fall back to the "
                "scalar engine inside run_many — the batched timing "
                "would be a lie"
            )
        start = time.perf_counter()
        batched_results = run_many(
            batch, horizon, drain=drain, backend="batched"
        )
        batched_time = time.perf_counter() - start

        scalar_batch = [
            _build_simulation(config, utilization, spec, name, True)
            for spec in specs
        ]
        start = time.perf_counter()
        scalar_results = [
            simulation.run(horizon, drain=drain)
            for simulation in scalar_batch
        ]
        scalar_time = time.perf_counter() - start

        for index, (batched_result, scalar_result) in enumerate(
            zip(batched_results, scalar_results)
        ):
            if batched_result.trace_digest != scalar_result.trace_digest:
                raise AssertionError(
                    f"{name}: trial {index}: batched and scalar traces "
                    "diverge — the backend is broken, benchmark numbers "
                    "would be lies"
                )
            pairs_verified += 1
        scalar_total += scalar_time
        batched_total += batched_time
        per_design[name] = {
            "scalar_seconds": round(scalar_time, 3),
            "batched_seconds": round(batched_time, 3),
            "speedup": round(scalar_time / batched_time, 2),
        }
    speedup = scalar_total / batched_total
    return {
        "workload": "fig7",
        "n_processors": 16,
        "utilization": utilization,
        "horizon": horizon,
        "drain": drain,
        "trials_per_design": n_trials,
        "interconnects": per_design,
        "aggregate": {
            "scalar_seconds": round(scalar_total, 3),
            "batched_seconds": round(batched_total, 3),
            "speedup": round(speedup, 3),
            "threshold": BATCHED_THRESHOLD,
            "passed": speedup >= BATCHED_THRESHOLD,
            "pairs_verified": pairs_verified,
        },
    }


def bench_batched_isolation(n_trials: int, horizon: int, drain: int) -> dict:
    """Batched SoA backend on the isolation campaign's simulations.

    The Experiment-FI shape: per trial, every design runs the same
    workload draw twice — fault-free and with client 0 turned rogue.
    The faulted half only stays on the SoA path because rogue-burst
    plans compile into the request schedule, so this is the gate that
    the fault envelope actually pays off.  Simulations are built
    outside the timed region (workload construction is identical on
    both sides); every batched/scalar pair must match on trace digest,
    job outcomes *and* fault counters, so a mis-compiled burst cannot
    hide behind a good number."""
    config = IsolationConfig(trials=n_trials, horizon=horizon, drain=drain)
    specs = build_isolation_specs(config)

    def build_all() -> list[SoCSimulation]:
        sims: list[SoCSimulation] = []
        for spec in specs:
            _, entries = _isolation_sims(spec)
            for _, base_sim, fault_sim in entries:
                sims.extend((base_sim, fault_sim))
        return sims

    batch = build_all()
    ineligible = [
        index
        for index, simulation in enumerate(batch)
        if not batched_supported(simulation)
    ]
    if ineligible:
        raise AssertionError(
            f"isolation: simulations {ineligible} would fall back to the "
            "scalar engine inside run_many — the batched timing would be "
            "a lie"
        )
    start = time.perf_counter()
    batched_results = run_many(batch, horizon, drain=drain, backend="batched")
    batched_time = time.perf_counter() - start

    scalar_batch = build_all()
    start = time.perf_counter()
    scalar_results = [
        simulation.run(horizon, drain=drain) for simulation in scalar_batch
    ]
    scalar_time = time.perf_counter() - start

    pairs_verified = 0
    rogue_requests = 0
    for index, (batched_result, scalar_result) in enumerate(
        zip(batched_results, scalar_results)
    ):
        same = (
            batched_result.trace_digest == scalar_result.trace_digest
            and batched_result.job_outcomes == scalar_result.job_outcomes
            and batched_result.fault_counters == scalar_result.fault_counters
        )
        if not same:
            raise AssertionError(
                f"isolation: simulation {index}: batched and scalar runs "
                "diverge — the backend is broken, benchmark numbers would "
                "be lies"
            )
        pairs_verified += 1
        rogue_requests += batched_result.fault_counters.get(
            "rogue_requests", 0
        )
    if rogue_requests == 0:
        raise AssertionError(
            "isolation: no rogue requests were injected — the campaign "
            "shape is wrong, nothing fault-related was measured"
        )
    speedup = scalar_time / batched_time
    return {
        "workload": "isolation",
        "n_clients": config.n_clients,
        "horizon": horizon,
        "drain": drain,
        "trials": n_trials,
        "simulations": len(batch),
        "rogue_requests": rogue_requests,
        "aggregate": {
            "scalar_seconds": round(scalar_time, 3),
            "batched_seconds": round(batched_time, 3),
            "speedup": round(speedup, 3),
            "threshold": BATCHED_ISOLATION_THRESHOLD,
            "passed": speedup >= BATCHED_ISOLATION_THRESHOLD,
            "pairs_verified": pairs_verified,
        },
    }


def enforce_gates(payload: dict) -> list[str]:
    """Collect every failed acceptance gate recorded in the payload.

    The gates live in the JSON itself (``threshold``/``passed``), so
    what the benchmark asserts and what it publishes cannot diverge."""
    failures = []
    for entry in payload["configurations"]:
        aggregate = entry["aggregate"]
        if "passed" in aggregate and not aggregate["passed"]:
            failures.append(
                f"{entry['label']}: fast path {aggregate['speedup']:.2f}x "
                f"< {aggregate['threshold']:.1f}x over reference"
            )
    aggregate = payload["batched_backend"]["aggregate"]
    if not aggregate["passed"]:
        failures.append(
            f"batched backend: {aggregate['speedup']:.2f}x "
            f"< {aggregate['threshold']:.1f}x over scalar fast path"
        )
    aggregate = payload["batched_isolation"]["aggregate"]
    if not aggregate["passed"]:
        failures.append(
            f"batched isolation: {aggregate['speedup']:.2f}x "
            f"< {aggregate['threshold']:.1f}x over scalar fast path"
        )
    return failures


def profile_components(horizon: int, drain: int) -> dict:
    """Cycle-accounting profile of one low-utilization BlueScale trial."""
    config = Fig7Config(
        n_processors=16,
        trials=1,
        horizon=horizon,
        drain=drain,
        utilizations=(0.10,),
    )
    seed = derive_seeds("bench_sim/profile", 1)[0]
    spec = TrialSpec.make("bench_sim", 0, seed, config=config)
    accounting = CycleAccounting()
    simulation = _build_simulation(
        config, 0.10, spec, "BlueScale", True, accounting=accounting
    )
    simulation.run(config.horizon, drain=config.drain)
    return accounting.as_dict()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny horizons + two configurations (CI wiring check; "
        "speedups are noise at this scale and are not asserted)",
    )
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT, help="output JSON path"
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timing repetitions per run (best-of-N wall time)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        configs, horizon, drain, repeats = SMOKE_CONFIGS, 2_000, 1_000, 1
        batched_trials, batched_horizon, batched_drain = (
            BATCHED_TRIALS_SMOKE,
            1_500,
            500,
        )
        isolation_trials, isolation_horizon, isolation_drain = (
            ISOLATION_TRIALS_SMOKE,
            1_500,
            500,
        )
    else:
        configs, horizon, drain, repeats = (
            FULL_CONFIGS,
            20_000,
            6_000,
            max(1, args.repeats),
        )
        batched_trials, batched_horizon, batched_drain = (
            BATCHED_TRIALS_FULL,
            3_000,
            1_000,
        )
        isolation_trials, isolation_horizon, isolation_drain = (
            ISOLATION_TRIALS_FULL,
            2_500,
            1_000,
        )

    # Warm the interpreter (imports, code objects, allocator arenas)
    # outside the timed region so the first configuration is not
    # penalized relative to the rest.
    bench_configuration("warmup", 4, 0.3, 1_000, 500, 1)

    batched_entry = bench_batched_backend(
        batched_trials, batched_horizon, batched_drain
    )
    aggregate = batched_entry["aggregate"]
    print(
        f"batched backend: {aggregate['speedup']:.2f}x over scalar fast "
        f"path ({aggregate['pairs_verified']} pairs trace-equal, "
        f"{batched_trials} trials x 6 designs)"
    )

    isolation_entry = bench_batched_isolation(
        isolation_trials, isolation_horizon, isolation_drain
    )
    aggregate = isolation_entry["aggregate"]
    print(
        f"batched isolation: {aggregate['speedup']:.2f}x over scalar fast "
        f"path ({aggregate['pairs_verified']} pairs equal on digest + "
        f"outcomes + counters, {isolation_trials} trials x "
        f"{len(ISOLATION_INTERCONNECTS)} designs x base/fault)"
    )

    results = []
    for label, n_processors, utilization in configs:
        entry = bench_configuration(
            label, n_processors, utilization, horizon, drain, repeats
        )
        aggregate = entry["aggregate"]
        print(
            f"{label}: fast {aggregate['fast_cycles_per_sec']:.0f} c/s, "
            f"slow {aggregate['slow_cycles_per_sec']:.0f} c/s, "
            f"speedup {aggregate['speedup']:.2f}x"
        )
        results.append(entry)

    payload = {
        "benchmark": "bench_sim",
        "mode": "smoke" if args.smoke else "full",
        "description": (
            "Batched SoA backend vs scalar fast path (Fig. 7 workload "
            "and the fault-injection isolation campaign), and fast path "
            "vs cycle-by-cycle reference; every measured pair verified "
            "trace-equal."
        ),
        "batched_backend": batched_entry,
        "batched_isolation": isolation_entry,
        "configurations": results,
        "component_profile_n16_u0.10": profile_components(horizon, drain),
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")

    if not args.smoke:
        failures = enforce_gates(payload)
        if failures:
            print("FAIL: " + "; ".join(failures))
            return 1
        print("OK: all acceptance gates met")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
