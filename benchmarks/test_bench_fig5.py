"""Bench F5 — regenerate Fig. 5 (hardware scalability, η = 1..7).

Prints the three series (area fraction, power, fmax) and asserts the
observations of Obs 2 / Obs 3: near-linear scaling, BlueScale smaller
than AXI-IC^RT but slightly more power-hungry at scale, and the
frequency crossover past 32 clients.
"""

import pytest

from repro.experiments.fig5 import format_fig5, run_fig5

from benchmarks.conftest import run_once


@pytest.mark.benchmark(group="fig5")
def test_fig5_hardware_scalability(benchmark):
    result = run_once(benchmark, run_fig5, 1, 7)
    print()
    print(format_fig5(result))

    # Fig 5(a): monotone growth; BlueScale < AXI-IC^RT from 8 clients on.
    for series in result.area.values():
        assert series == sorted(series)
    assert all(
        blue < axi
        for blue, axi in zip(
            result.area["BlueScale"][2:], result.area["AXI-IC^RT"][2:]
        )
    )
    # Obs 2: added area is a small margin through 64 clients (< 5 pp).
    for eta_index in range(6):  # η = 1..6
        margin = (
            result.area["Legacy+BlueScale"][eta_index]
            - result.area["Legacy"][eta_index]
        )
        assert margin < 0.05

    # Fig 5(b): power grows ~linearly; BlueScale slightly above AXI at scale.
    assert result.power_w["BlueScale"][-1] > result.power_w["AXI-IC^RT"][-1]

    # Fig 5(c) / Obs 3: the crossover happens past 32 clients (η = 6),
    # and BlueScale never limits the system.
    assert result.crossover_eta() == 6
    assert all(
        blue > legacy
        for blue, legacy in zip(
            result.fmax_mhz["BlueScale"], result.fmax_mhz["Legacy"]
        )
    )
