"""Bench T1 — regenerate Table 1 (hardware overhead, 16 clients).

Prints the measured-vs-paper table and asserts the observations of
Obs 1: BlueScale sits between the distributed trees and the
centralized interconnect, and well below a processor core.
"""

import pytest

from repro.experiments.table1 import format_table1, run_table1

from benchmarks.conftest import run_once


@pytest.mark.benchmark(group="table1")
def test_table1_hardware_overhead(benchmark):
    rows = run_once(benchmark, run_table1, 16)
    print()
    print(format_table1(rows))

    report = {row.design: row.report for row in rows}
    # Obs 1 — who is bigger than whom.
    assert report["BlueScale"].luts > report["BlueTree"].luts
    assert report["BlueScale"].luts > report["GSMTree"].luts
    assert report["BlueScale"].luts < report["AXI-IC^RT"].luts
    assert report["BlueScale"].luts < report["MicroBlaze"].luts
    assert report["BlueScale"].luts < report["RISC-V"].luts
    assert report["BlueScale"].dsps == 0
    # every measured cell is within 8% of the paper's Table 1
    for row in rows:
        assert row.report.luts == pytest.approx(row.paper[0], rel=0.08)
        assert row.report.registers == pytest.approx(row.paper[1], rel=0.08)
        assert row.report.power_mw == pytest.approx(row.paper[4], rel=0.08)
