"""Bench F6 — regenerate Fig. 6 (interconnect-level real-time
performance with 16 and 64 traffic generators).

The paper runs 200 hardware trials per configuration; this bench runs
a reduced-but-stable number of simulated trials (raise ``TRIALS`` to
approach the paper's scale).  Assertions pin Obs 4: BlueScale has the
shortest blocking latency, the lowest deadline-miss ratio and the
lowest variance, and the advantage persists at 64 clients.
"""

import pytest

from repro.experiments.fig6 import Fig6Config, format_fig6, run_fig6

from benchmarks.conftest import run_once

TRIALS = 5


@pytest.mark.benchmark(group="fig6")
def test_fig6_16_traffic_generators(benchmark):
    config = Fig6Config(n_clients=16, trials=TRIALS, horizon=20_000)
    result = run_once(benchmark, run_fig6, config)
    print()
    print(format_fig6(result))

    metrics = result.metrics
    # Obs 4 (i): best miss ratio; blocking below every distributed
    # baseline and statistically tied with AXI-IC^RT (both are
    # deadline-aware; the paper's strict ordering re-emerges at 64
    # clients — see the companion bench and EXPERIMENTS.md).
    assert result.best_miss_ratio() == "BlueScale"
    blue_blocking = metrics["BlueScale"].mean_blocking
    for name in ("BlueTree", "BlueTree-Smooth", "GSMTree-TDM", "GSMTree-FBSP"):
        assert blue_blocking < metrics[name].mean_blocking, name
    assert blue_blocking < 1.5 * metrics["AXI-IC^RT"].mean_blocking
    # Obs 4 (ii): least variance in the miss ratio.
    blue_std = metrics["BlueScale"].miss_ratio_std
    for name, m in metrics.items():
        if name != "BlueScale":
            assert blue_std <= m.miss_ratio_std + 1e-9, name
    # heuristic arbitration (BlueTree) blocks more than deadline-aware designs
    assert metrics["BlueTree"].mean_blocking > metrics["BlueScale"].mean_blocking


@pytest.mark.benchmark(group="fig6")
def test_fig6_64_traffic_generators(benchmark):
    config = Fig6Config(n_clients=64, trials=3, horizon=10_000)
    result = run_once(benchmark, run_fig6, config)
    print()
    print(format_fig6(result))

    metrics = result.metrics
    assert result.best_miss_ratio() == "BlueScale"
    assert result.best_blocking() == "BlueScale"
    # the 16 -> 64 scaling hurts every baseline more than BlueScale
    blue = metrics["BlueScale"].mean_miss_ratio
    for name in ("BlueTree", "BlueTree-Smooth", "GSMTree-TDM"):
        assert metrics[name].mean_miss_ratio > blue, name
