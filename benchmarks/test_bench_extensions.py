"""Bench E1/E2 — extension experiments beyond the paper's artefacts.

* **update-latency** — quantifies Sec. 3.2's scheduling-scalability
  property: a task join touches O(log n) SEs and reproduces the full
  recomposition's interfaces exactly, while a centralized allocator
  recomputes every client.
* **dram-sensitivity** — robustness of the slot-abstraction results to
  a banked row-buffer DRAM provider, under worst-case vs average-cost
  provisioning.
"""

import pytest

from repro.experiments.dram_sensitivity import (
    format_dram_sensitivity,
    run_dram_sensitivity,
)
from repro.experiments.update_latency import (
    format_update_latency,
    run_update_latency,
)

from benchmarks.conftest import run_once


@pytest.mark.benchmark(group="extensions")
def test_update_latency_locality(benchmark):
    costs = run_once(benchmark, run_update_latency, (16, 64, 256))
    print()
    print(format_update_latency(costs))

    for cost in costs:
        # path-local result identical to a full recomposition
        assert cost.results_identical
        # O(log n) SEs touched vs O(n) centralized budgets
        assert cost.path_ses < cost.centralized_budgets
        assert cost.path_update_seconds < cost.full_recompose_seconds
    # locality improves with scale: 2/5 -> 3/21 -> 4/85
    localities = [cost.locality for cost in costs]
    assert localities == sorted(localities, reverse=True)


@pytest.mark.benchmark(group="extensions")
def test_dram_provider_sensitivity(benchmark):
    outcomes = run_once(
        benchmark, run_dram_sensitivity, 16, 0.7, (1, 2), 10_000
    )
    print()
    print(format_dram_sensitivity(outcomes))

    by_key = {(o.interconnect, o.configuration): o for o in outcomes}
    # the slot abstraction is safe under worst-case provisioning
    assert by_key[("BlueScale", "dram/worst-case")].miss_ratio <= 0.01
    # average-cost provisioning is unsafe for every design
    for name in ("BlueScale", "BlueTree", "AXI-IC^RT"):
        assert (
            by_key[(name, "dram/average")].miss_ratio
            > by_key[(name, "dram/worst-case")].miss_ratio
        )
    # BlueScale's EDF shaping interleaves clients and destroys row
    # locality — an honest cost of predictability-first scheduling
    assert (
        by_key[("BlueScale", "dram/worst-case")].row_hit_ratio
        < by_key[("AXI-IC^RT", "dram/worst-case")].row_hit_ratio
    )
