"""Bench E3 — interconnect-level scalability sweep (extension).

Fills in the curve between Fig. 6's two sizes: miss ratio and mean
response from 4 to 64 clients at a fixed 45% utilization, plus the
composition's admission ceiling per size.
"""

import pytest

from repro.experiments.scalability_sweep import (
    format_scalability,
    run_scalability_sweep,
)

from benchmarks.conftest import run_once


@pytest.mark.benchmark(group="extensions")
def test_scalability_sweep(benchmark):
    result = run_once(
        benchmark,
        run_scalability_sweep,
        (4, 16, 64),
        0.45,
        (1,),
    )
    print()
    print(format_scalability(result))

    miss = result.series("miss_ratio")
    sizes = result.sizes()
    # BlueScale keeps (near-)zero misses at every size
    assert all(value <= 0.001 for value in miss["BlueScale"])
    # the heuristic tree degrades monotonically with scale
    assert miss["BlueTree"] == sorted(miss["BlueTree"])
    assert miss["BlueTree"][-1] > miss["BlueScale"][-1]
    # predictability costs latency: BlueScale's shaping shows in the mean
    response = result.series("mean_response")
    assert response["BlueScale"][-1] > response["BlueTree"][-1]
    # composition overhead: the admission ceiling declines with depth
    ceilings = [result.admission_ceiling[n] for n in sizes]
    assert ceilings[0] > ceilings[-1]
    assert all(c > result.utilization for c in ceilings)
