"""Bench A1 — ablations of BlueScale's design choices.

Not a paper artefact: quantifies how much each mechanism DESIGN.md
calls out contributes, under the Fig. 6 workload at 85% utilization.

* nested EDF (Algorithm 1) vs round-robin server selection,
* random-access priority buffers vs plain FIFOs,
* interface selection vs demand-blind equal-share servers,
* quadtree (4-to-1) vs binary (2-to-1) Scale Elements.
"""

import pytest

from repro.experiments.ablation import VARIANTS, run_ablation
from repro.experiments.reporting import format_table

from benchmarks.conftest import run_once


@pytest.mark.benchmark(group="ablation")
def test_design_choice_ablations(benchmark):
    results = run_once(
        benchmark, run_ablation, 16, 0.85, (1, 2, 3), 12_000
    )
    print()
    rows = [
        [
            point.variant,
            f"{100 * point.mean_miss_ratio:.2f}",
            f"{point.mean_blocking:.2f}",
            f"{point.mean_response:.1f}",
        ]
        for point in results.values()
    ]
    print(
        format_table(
            ["variant", "miss ratio (%)", "blocking (slots)", "response (slots)"],
            rows,
            title="BlueScale design-choice ablations (16 clients, U=0.85)",
        )
    )

    assert set(results) == set(VARIANTS)
    paper = results["paper"]
    # Demand-blind equal-share servers are catastrophic: the interface
    # selection algorithm is the dominant mechanism.
    assert results["naive_interfaces"].mean_miss_ratio > 10 * max(
        paper.mean_miss_ratio, 1e-4
    )
    # Removing the lower-level priority queue costs deadline misses.
    assert results["fifo_buffers"].mean_miss_ratio >= paper.mean_miss_ratio
    # Round-robin server selection roughly doubles priority inversion.
    assert results["round_robin"].mean_blocking > 1.5 * paper.mean_blocking
    # Binary fan-out doubles the tree depth: hardware cost (more SEs),
    # and the composition loses schedulability head-room; the quadtree
    # keeps the same workload analytically schedulable.
    binary = results["binary_fanout"]
    assert binary.mean_miss_ratio >= 0.0  # it still functions
