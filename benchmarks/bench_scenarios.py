"""Churn re-composition benchmark: incremental re-selection vs rebuild.

The scalability claim behind ``repro.scenarios`` is that admitting,
evicting or re-tasking one client is an O(log n) *path-local* update —
:func:`repro.analysis.composition.update_client` re-resolves only the
SEs on the touched client's path to the root, against the warm
(T, C)-multiset cache a long-running
:class:`~repro.analysis.session.AdmissionSession` accumulates.  This
benchmark replays a generated :class:`~repro.scenarios.plan.ScenarioPlan`
(joins, leaves, rate changes, mode switches) against one session and
times, for every committed transition:

* the **incremental** path — the live session's own
  ``admit``/``evict``/``retask`` decision (warm cache);
* a **from-scratch cold** rebuild — ``compose()`` of the full
  post-transition system with a fresh, empty
  :class:`~repro.analysis.cache.AnalysisCache` (what a stateless
  admission controller would pay);
* a **from-scratch warm** rebuild — ``compose()`` with a persistent
  cache, as a sweep-style middle ground.

It also replays the same plan through
:func:`~repro.scenarios.replay.replay_plan` and sanity-checks the
per-transition :class:`~repro.scenarios.transient.TransientBound`
windows the analysis layer emits.

Acceptance gate (both modes): the median warm-cache incremental
re-selection must be **>= 5x faster** than the median from-scratch cold
composition.  Writes ``BENCH_scenarios.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_scenarios.py           # full, n=64
    PYTHONPATH=src python benchmarks/bench_scenarios.py --smoke   # CI, n=16
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.cache import AnalysisCache
from repro.analysis.context import AnalysisContext
from repro.analysis.composition import compose
from repro.analysis.model import SystemModel
from repro.scenarios.plan import ScenarioKind, ScenarioPlan
from repro.scenarios.replay import replay_plan
from repro.sim.stats import SummaryStatistics

DEFAULT_OUTPUT = (
    Path(__file__).resolve().parent.parent / "BENCH_scenarios.json"
)
SPEEDUP_GATE = 5.0


def _stats(samples_ms: list[float]) -> dict:
    s = SummaryStatistics.from_sample(samples_ms)
    return {
        "p50": round(s.p50, 4),
        "mean": round(s.mean, 4),
        "max": round(s.maximum, 4),
    }


def time_transitions(
    model: SystemModel, plan: ScenarioPlan
) -> tuple[list[float], list[float], list[float], int, int]:
    """Per committed transition: (incremental, cold, warm-rebuild) ms."""
    session = model.session()
    warm_rebuild_cache = AnalysisCache()
    incremental_ms: list[float] = []
    cold_ms: list[float] = []
    warm_ms: list[float] = []
    committed = 0
    rejected = 0
    for event in plan.events:
        current = session.tasksets.get(event.client_id)
        proposed = event.proposed(current) if current is not None else None

        started = time.perf_counter()
        if event.kind is ScenarioKind.CLIENT_JOIN:
            decision = session.admit(event.client_id, event.assigned_tasks())
        elif event.kind is ScenarioKind.CLIENT_LEAVE:
            decision = session.evict(event.client_id)
        elif proposed is not None and len(proposed) > 0:
            decision = session.retask(event.client_id, proposed)
        else:
            decision = session.evict(event.client_id)
        elapsed_incremental = (time.perf_counter() - started) * 1000.0

        if not decision.committed:
            rejected += 1
            continue
        committed += 1
        incremental_ms.append(elapsed_incremental)
        after = session.tasksets

        started = time.perf_counter()
        cold = compose(
            model.topology,
            after,
            deadline_margin=model.deadline_margin,
            ctx=AnalysisContext.resolve(
                None, AnalysisCache(), model.context.config
            ),
        )
        cold_ms.append((time.perf_counter() - started) * 1000.0)
        assert cold.schedulable, "cold rebuild disagrees with session"

        started = time.perf_counter()
        compose(
            model.topology,
            after,
            deadline_margin=model.deadline_margin,
            ctx=AnalysisContext.resolve(
                None, warm_rebuild_cache, model.context.config
            ),
        )
        warm_ms.append((time.perf_counter() - started) * 1000.0)
    return incremental_ms, cold_ms, warm_ms, committed, rejected


def check_transients(model: SystemModel, plan: ScenarioPlan) -> dict:
    """Replay the plan analytically; summarize the transient windows."""
    replayed = replay_plan(model.session(), plan, transients=True)
    windows = [r.transient.window for r in replayed if r.transient]
    analytic = sum(
        1 for r in replayed if r.transient and r.transient.analytic
    )
    bad = [
        r.index
        for r in replayed
        if r.applied and (r.transient is None or r.transient.window < 0)
    ]
    return {
        "transitions": len(replayed),
        "bounded": len(windows),
        "analytic": analytic,
        "window_max": max(windows, default=0),
        "window_mean": round(statistics.fmean(windows), 1) if windows else 0,
        "unbounded_committed": bad,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fewer events (CI); same model size and the same >=5x "
        "gate — the path-local advantage is a property of the tree "
        "depth, not of the event count",
    )
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT, help="output JSON path"
    )
    args = parser.parse_args(argv)

    n_clients = 64
    per_kind = 2 if args.smoke else 8
    model = SystemModel.from_seed(
        n_clients,
        utilization=0.30,
        seed=11,
        cache=AnalysisCache(),
    )
    plan = ScenarioPlan.generate(
        11,
        100_000,
        n_clients,
        joins=per_kind,
        leaves=per_kind,
        rate_changes=per_kind,
        mode_switches=per_kind,
    )

    incremental_ms, cold_ms, warm_ms, committed, rejected = time_transitions(
        model, plan
    )
    if not incremental_ms:
        print("FAIL: no transition committed — nothing to measure")
        return 1
    speedup = statistics.median(cold_ms) / statistics.median(incremental_ms)
    transients = check_transients(model, plan)

    print(
        f"{len(plan)} transitions on {n_clients} clients: "
        f"{committed} committed, {rejected} rejected"
    )
    print(
        f"incremental (warm session): median "
        f"{statistics.median(incremental_ms):.3f}ms | from-scratch cold: "
        f"{statistics.median(cold_ms):.3f}ms | from-scratch warm: "
        f"{statistics.median(warm_ms):.3f}ms"
    )
    print(f"incremental vs cold rebuild: {speedup:.1f}x")
    print(
        f"transients: {transients['bounded']} bounded "
        f"({transients['analytic']} analytic), max window "
        f"{transients['window_max']} cycles"
    )

    payload = {
        "benchmark": "bench_scenarios",
        "mode": "smoke" if args.smoke else "full",
        "description": (
            "Warm-cache incremental re-selection (AdmissionSession "
            "admit/evict/retask) vs from-scratch composition for every "
            "committed transition of a generated churn plan."
        ),
        "model": model.describe(),
        "events": len(plan),
        "committed": committed,
        "rejected": rejected,
        "incremental_ms": _stats(incremental_ms),
        "from_scratch_cold_ms": _stats(cold_ms),
        "from_scratch_warm_ms": _stats(warm_ms),
        "median_speedup_vs_cold": round(speedup, 1),
        "speedup_gate": SPEEDUP_GATE,
        "transients": transients,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")

    failures = []
    if speedup < SPEEDUP_GATE:
        failures.append(
            f"incremental speedup {speedup:.1f}x < {SPEEDUP_GATE:.0f}x gate"
        )
    if transients["unbounded_committed"]:
        failures.append(
            "committed transitions without a transient bound: "
            f"{transients['unbounded_committed']}"
        )
    if failures:
        print("FAIL: " + "; ".join(failures))
        return 1
    print("OK: all gates passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
