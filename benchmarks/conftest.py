"""Shared helpers for the benchmark harness.

Each benchmark module regenerates one of the paper's tables/figures at
a laptop-scale configuration and *prints the same rows/series the paper
reports* (run pytest with ``-s`` to see them).  Shape assertions keep
the benchmarks honest: a refactor that silently destroys a headline
result fails the bench suite.
"""

from __future__ import annotations


def run_once(benchmark, fn, *args, **kwargs):
    """Run an expensive experiment exactly once under pytest-benchmark.

    The paper-scale experiments take seconds to minutes; statistical
    repetition happens *inside* them (trials), so one benchmark round
    suffices.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
