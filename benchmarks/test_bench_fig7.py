"""Bench F7 — regenerate Fig. 7 (automotive case study, success ratio
vs target utilization, 16- and 64-core systems + a DNN accelerator).

Assertions pin Obs 5: BlueScale consistently achieves the highest
success ratios among the distributed interconnects and beats
AXI-IC^RT in most trials; success falls with target utilization for
the weak designs.
"""

import pytest

from repro.experiments.fig7 import Fig7Config, format_fig7, run_fig7

from benchmarks.conftest import run_once

UTILIZATIONS = (0.3, 0.5, 0.7, 0.9)


@pytest.mark.benchmark(group="fig7")
def test_fig7_16_core_case_study(benchmark):
    config = Fig7Config(
        n_processors=16, trials=4, horizon=15_000, utilizations=UTILIZATIONS
    )
    result = run_once(benchmark, run_fig7, config)
    print()
    print(format_fig7(result))

    # Obs 5: BlueScale dominates every distributed baseline pointwise.
    for name in ("BlueTree", "BlueTree-Smooth", "GSMTree-TDM", "GSMTree-FBSP"):
        assert result.dominated_by_bluescale(name), name
    # ... and matches or beats AXI-IC^RT on most points.
    blue = result.success_ratio["BlueScale"]
    axi = result.success_ratio["AXI-IC^RT"]
    wins = sum(b >= a for b, a in zip(blue, axi))
    assert wins >= len(UTILIZATIONS) - 1
    # everything is perfect at the lightest load
    assert blue[0] == 1.0
    # the demand-blind TDM reservation collapses at high utilization
    assert result.success_ratio["GSMTree-TDM"][-1] < blue[-1]


@pytest.mark.benchmark(group="fig7")
def test_fig7_64_core_case_study(benchmark):
    config = Fig7Config(
        n_processors=64,
        trials=3,
        horizon=10_000,
        drain=4_000,
        utilizations=(0.3, 0.6, 0.9),
    )
    result = run_once(benchmark, run_fig7, config)
    print()
    print(format_fig7(result))

    for name in ("BlueTree", "BlueTree-Smooth", "GSMTree-TDM"):
        assert result.dominated_by_bluescale(name), name
    blue = result.success_ratio["BlueScale"]
    assert blue[0] == 1.0
