"""Analysis-engine benchmark: vectorized backend vs. scalar oracle.

Times the Fig. 7 candidate-selection workload — the full hierarchical
composition (interface selection at every quadtree node) of a drawn
case-study task system — under both analysis backends at several
(system size, target utilization) configurations, and writes
``BENCH_analysis.json`` with:

* per-configuration wall time for the scalar oracle (cache disabled,
  the pre-engine behaviour) and the vectorized engine (fresh
  :class:`~repro.analysis.cache.AnalysisCache` per run, so the speedup
  measures one cold composition, not cross-run memoization), plus the
  resulting speedup;
* a cache-warm re-composition time per configuration, showing what the
  memoization layer adds for sweep-style workloads that re-analyze
  unchanged subtrees;
* the selected root interface/verdict per configuration.

Every scalar/vectorized pair is asserted to produce *identical*
selected interfaces, schedulability verdicts and root bandwidth, so
the benchmark doubles as an end-to-end differential test at benchmark
scale.  The full run is acceptance-gated: the vectorized backend must
deliver >= 5x the scalar oracle's throughput on every configuration.

Usage::

    PYTHONPATH=src python benchmarks/bench_analysis.py            # full run
    PYTHONPATH=src python benchmarks/bench_analysis.py --smoke    # CI smoke
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis import AnalysisCache, compose
from repro.analysis.cache import DISABLED
from repro.experiments.fig7 import Fig7Config, _build_trial_tasksets
from repro.runtime import TrialSpec, derive_seeds
from repro.tasks.taskset import TaskSet
from repro.topology import quadtree

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_analysis.json"

#: (label, n_processors, utilization) — both system sizes of the paper's
#: case study, below and near the admission ceiling
FULL_CONFIGS = [
    ("n16/u0.30", 16, 0.30),
    ("n16/u0.50", 16, 0.50),
    ("n16/u0.80", 16, 0.80),
    ("n64/u0.30", 64, 0.30),
    ("n64/u0.50", 64, 0.50),
    ("n64/u0.80", 64, 0.80),
]
SMOKE_CONFIGS = [
    ("n16/u0.50", 16, 0.50),
]


def _build_workload(
    label: str, n_processors: int, utilization: float
) -> tuple[Fig7Config, dict[int, TaskSet]]:
    """The per-client task sets of one Fig. 7 trial draw."""
    config = Fig7Config(n_processors=n_processors, trials=1)
    seed = derive_seeds(f"bench_analysis/{label}", 1)[0]
    spec = TrialSpec.make("bench_analysis", 0, seed, config=config)
    rng = random.Random(spec.seed)
    application, interference, accelerator_tasks = _build_trial_tasksets(
        config, utilization, rng
    )
    combined = {
        client: application[client].merged_with(
            interference.get(client, TaskSet())
        )
        for client in application
    }
    combined[n_processors] = accelerator_tasks.merged_with(
        interference.get(n_processors, TaskSet())
    )
    return config, combined


def bench_configuration(
    label: str, n_processors: int, utilization: float, repeats: int
) -> dict:
    config, combined = _build_workload(label, n_processors, utilization)
    topology = quadtree(config.n_clients)

    scalar_time = vectorized_time = warm_time = None
    scalar_result = vectorized_result = None
    cache_stats = {}
    for _ in range(repeats):
        # Interleaved best-of-N, like bench_sim: the minimum is the
        # least noise-contaminated sample and alternation decorrelates
        # machine-load drift from the backend under test.
        start = time.perf_counter()
        scalar_result = compose(
            topology, combined, backend="scalar", cache=DISABLED
        )
        elapsed = time.perf_counter() - start
        if scalar_time is None or elapsed < scalar_time:
            scalar_time = elapsed

        cache = AnalysisCache()
        start = time.perf_counter()
        vectorized_result = compose(
            topology, combined, backend="vectorized", cache=cache
        )
        elapsed = time.perf_counter() - start
        if vectorized_time is None or elapsed < vectorized_time:
            vectorized_time = elapsed

        start = time.perf_counter()
        warm_result = compose(
            topology, combined, backend="vectorized", cache=cache
        )
        elapsed = time.perf_counter() - start
        if warm_time is None or elapsed < warm_time:
            warm_time = elapsed
            cache_stats = cache.stats.as_dict()

        for other, path in (
            (vectorized_result, "vectorized"),
            (warm_result, "cache-warm"),
        ):
            if (
                other.interfaces != scalar_result.interfaces
                or other.schedulable != scalar_result.schedulable
                or other.root_bandwidth != scalar_result.root_bandwidth
            ):
                raise AssertionError(
                    f"{label}: {path} composition diverges from the scalar "
                    "oracle — the engine is broken, benchmark numbers "
                    "would be lies"
                )

    return {
        "label": label,
        "n_processors": n_processors,
        "utilization": utilization,
        "scalar_seconds": round(scalar_time, 4),
        "vectorized_seconds": round(vectorized_time, 4),
        "cache_warm_seconds": round(warm_time, 6),
        "speedup": round(scalar_time / vectorized_time, 2),
        "cache_stats_warm": cache_stats,
        "schedulable": scalar_result.schedulable,
        "root_bandwidth": float(scalar_result.root_bandwidth),
        "verdicts_identical": True,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="single configuration, one repeat (CI wiring check; the "
        "5x gate is not asserted — verdict equality still is)",
    )
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT, help="output JSON path"
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timing repetitions per configuration (best-of-N wall time)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        configs, repeats = SMOKE_CONFIGS, 1
    else:
        configs, repeats = FULL_CONFIGS, max(1, args.repeats)

    # Warm the interpreter (imports, numpy, code objects) outside the
    # timed region so the first configuration is not penalized.
    bench_configuration("warmup", 4, 0.3, 1)

    results = []
    for label, n_processors, utilization in configs:
        entry = bench_configuration(label, n_processors, utilization, repeats)
        print(
            f"{label}: scalar {entry['scalar_seconds']:.3f}s, "
            f"vectorized {entry['vectorized_seconds']:.3f}s "
            f"({entry['speedup']:.1f}x), "
            f"cache-warm {entry['cache_warm_seconds'] * 1e3:.2f}ms"
        )
        results.append(entry)

    payload = {
        "benchmark": "bench_analysis",
        "mode": "smoke" if args.smoke else "full",
        "description": (
            "Vectorized analysis engine vs scalar oracle on the Fig. 7 "
            "candidate-selection workload (full quadtree composition); "
            "every pair verified to select identical interfaces and "
            "verdicts."
        ),
        "configurations": results,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")

    if not args.smoke:
        shortfalls = [
            f"{entry['label']}: {entry['speedup']:.2f}x"
            for entry in results
            if entry["speedup"] < 5.0
        ]
        if shortfalls:
            print(
                "FAIL: vectorized speedup below 5x: " + ", ".join(shortfalls)
            )
            return 1
        print("OK: all configurations >= 5x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
